package ftm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"resilientft/internal/telemetry"
)

// Adaptive accumulation window. A freshly-elected batch leader lingers
// for a short window before detaching, so concurrent requests that are
// still mid-pipeline reach join and ride the same ship. The fixed
// policy used to be a single runtime.Gosched — right for a saturated
// few-core host, but it leaves batching on the table whenever requests
// need more than one scheduler pass to arrive, and it cannot be traded
// against latency. The controller below sizes the window from the two
// series the telemetry registry already carries:
//
//   - ftm_checkpoint_batch_size — recent mean fill tells whether there
//     is any batching to win (fill ~1 means a lone client; lingering
//     only adds latency).
//   - ftm_wave_ship_latency — the recent p95 of capture-to-ack tells
//     what a ship costs; window plus ship p95 is the latency a member
//     pays for riding, and the controller keeps that sum under the
//     target.
//
// The window grows multiplicatively while there is batching evidence
// and latency headroom, and halves as soon as the budget is exceeded —
// AIMD-shaped, biased toward backing off. Operators pin it with the
// "accumWindow" brick property (-1 returns it to adaptive) and set the
// budget with "accumTarget"; both are reachable live via ftmctl tune.
const (
	// accumRetuneShips spaces controller decisions: one re-evaluation
	// per this many ships keeps the snapshot differencing off the
	// per-ship fast path.
	accumRetuneShips = 16
	// accumMinWindow is the smallest nonzero window; below it the
	// window collapses to zero (plain yield).
	accumMinWindow = 4 * time.Microsecond
	// accumMaxWindow caps lingering regardless of headroom.
	accumMaxWindow = time.Millisecond
	// accumDefaultTarget is the default window+ship latency budget.
	accumDefaultTarget = 500 * time.Microsecond
	// accumSpinLimit separates yield-spinning from sleeping: Go timer
	// wakeups are far too coarse for windows in the tens of
	// microseconds, so short windows burn scheduler passes instead.
	accumSpinLimit = 200 * time.Microsecond
)

// accumControl holds one notifier's window state. The ship-latency and
// batch-size series are process-global (shared with any co-hosted
// replica), so the controller steers on aggregate evidence; each
// notifier still converges independently because it differences its
// own marks.
type accumControl struct {
	windowNs atomic.Int64 // current adaptive window
	fixedNs  atomic.Int64 // >=0 pins the window; -1 = adaptive
	targetNs atomic.Int64 // window+ship p95 latency budget

	// shipCount gates retunes off the fast path without taking mu.
	shipCount atomic.Uint64

	mu        sync.Mutex
	shipMark  telemetry.HistogramSnapshot
	batchMark telemetry.HistogramSnapshot
	// Hill-climber state: the covered-request rate the previous period
	// achieved, and the direction the last step took (+1 grow, -1
	// shrink). A step that lowers the rate is reversed.
	lastTune time.Time
	lastRate float64
	dir      int
}

func newAccumControl() *accumControl {
	c := &accumControl{dir: 1}
	c.fixedNs.Store(-1)
	c.targetNs.Store(int64(accumDefaultTarget))
	return c
}

// setFixed pins the window to ns nanoseconds; -1 resumes adaptation.
func (c *accumControl) setFixed(ns int64) {
	if ns < -1 {
		ns = -1
	}
	c.fixedNs.Store(ns)
	if ns >= 0 {
		mAccumWindow.Set(ns)
	}
}

// setTarget replaces the latency budget (ignored unless positive).
func (c *accumControl) setTarget(ns int64) {
	if ns > 0 {
		c.targetNs.Store(ns)
	}
}

// window returns the window a leader should honor right now.
func (c *accumControl) window() time.Duration {
	if f := c.fixedNs.Load(); f >= 0 {
		return time.Duration(f)
	}
	return time.Duration(c.windowNs.Load())
}

// retune re-evaluates the window once enough ships accumulated since
// the previous decision. The objective is the covered-request rate —
// wave members shipped per second, read off the batch-size series —
// which is the throughput the batching actually delivers: a hill
// climber doubles or halves the window depending on whether the last
// step helped, so a host where lingering buys nothing (a saturated
// single core fills waves from the run queue alone) converges back to
// the plain yield instead of trusting fill as a proxy. Two guards
// override the climb: window plus recent ship p95 must stay inside the
// latency budget, and lone-client traffic (fill ~1) collapses the
// window outright. maxWave matters only through the budget — a wave
// near its cap stops gaining fill, the rate stops improving, and the
// climber turns around on its own.
func (c *accumControl) retune(maxWave int) {
	if c.fixedNs.Load() >= 0 {
		return
	}
	if mWaveShipLatency.Count()-c.shipCount.Load() < accumRetuneShips {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ship := mWaveShipLatency.Snapshot()
	if ship.Count-c.shipMark.Count < accumRetuneShips {
		return
	}
	now := time.Now()
	batch := mCkptBatchSize.Snapshot()
	recentShip := ship.Delta(c.shipMark)
	recentBatch := batch.Delta(c.batchMark)
	elapsed := now.Sub(c.lastTune)
	first := c.lastTune.IsZero()
	c.shipMark, c.batchMark, c.lastTune = ship, batch, now
	c.shipCount.Store(ship.Count)

	fill := recentBatch.MeanNs()
	rate := 0.0
	if elapsed > 0 {
		// Batch-size observations record raw member counts, so the
		// period's SumNs is the number of requests covered by its ships.
		rate = float64(recentBatch.SumNs) / elapsed.Seconds()
	}
	w := c.windowNs.Load()
	target := c.targetNs.Load()
	switch {
	case first:
		// No previous period to compare against; keep the window.
		c.lastRate = rate
		return
	case w+int64(recentShip.Quantile(0.95)) > target:
		c.dir = -1 // over the latency budget: forced shrink
	case fill <= 1.05:
		c.dir = -1 // lone-client traffic: lingering is pure latency
	case rate < c.lastRate*0.97:
		c.dir = -c.dir // last step lost throughput: turn around
	}
	c.lastRate = rate
	if c.dir > 0 {
		if w == 0 {
			w = int64(accumMinWindow)
		} else {
			w *= 2
		}
		if w > int64(accumMaxWindow) {
			w = int64(accumMaxWindow)
		}
	} else {
		w /= 2
		if w < int64(accumMinWindow) {
			// The floor flips the climber back to probing upward, so a
			// workload shift that makes lingering pay again is noticed.
			w = 0
			c.dir = 1
		}
	}
	c.windowNs.Store(w)
	mAccumWindow.Set(w)
}

// linger holds the leader for the current window. The always-taken
// yield is the degenerate window: concurrent requests that are already
// runnable get one scheduler pass to reach join. Short windows spin on
// yields (timer wakeups are too coarse for them); long ones sleep.
func (c *accumControl) linger() {
	runtime.Gosched()
	w := c.window()
	if w <= 0 {
		return
	}
	if w <= accumSpinLimit {
		deadline := time.Now().Add(w)
		for time.Now().Before(deadline) {
			runtime.Gosched()
		}
		return
	}
	time.Sleep(w)
}
