package ftm

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// TypePeer is the component type of the inter-replica bridge.
const TypePeer = "ftm.peer"

// replicaEnvelope frames one inter-replica message on the wire. It
// wraps every inter-replica call, so it carries its own fast binary
// codec instead of going through gob.
type replicaEnvelope struct {
	Kind   string
	From   string
	System string
	// Group is the replica group (shard) the message belongs to; empty
	// in unsharded deployments. The serving-side mux dispatches on it
	// when several groups share one endpoint.
	Group   string
	Payload []byte
	// Trace is the sender-side ship span context; it travels as an
	// optional codec trailer (absent on unsampled sends, so those frames
	// are byte-identical to the trailerless encoding) and parents the
	// receiver's apply span.
	Trace telemetry.SpanContext
}

var (
	_ transport.FastMarshaler   = replicaEnvelope{}
	_ transport.FastUnmarshaler = (*replicaEnvelope)(nil)
)

// AppendFast implements transport.FastMarshaler.
func (e replicaEnvelope) AppendFast(buf []byte) []byte {
	buf = transport.AppendLenString(buf, e.Kind)
	buf = transport.AppendLenString(buf, e.From)
	buf = transport.AppendLenString(buf, e.System)
	// Group is mandatory (empty = unsharded): the optional slot after
	// Payload belongs to the trace trailer. Pre-group gob frames still
	// decode through the compat arm.
	buf = transport.AppendLenString(buf, e.Group)
	buf = transport.AppendLenBytes(buf, e.Payload)
	if e.Trace.Valid() {
		buf = transport.AppendUvarint(buf, e.Trace.TraceID)
		buf = transport.AppendUvarint(buf, e.Trace.SpanID)
	}
	return buf
}

// DecodeFast implements transport.FastUnmarshaler. The string fields
// draw from tiny recurring sets (message kinds, replica addresses), so
// they decode interned; the payload aliases data, which the transport
// keeps alive until the enclosing handler returns — the apply path
// copies whatever it retains.
func (e *replicaEnvelope) DecodeFast(data []byte) error {
	var err error
	if e.Kind, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("ftm: envelope kind: %w", err)
	}
	if e.From, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("ftm: envelope from: %w", err)
	}
	if e.System, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("ftm: envelope system: %w", err)
	}
	if e.Group, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("ftm: envelope group: %w", err)
	}
	if e.Payload, data, err = transport.ReadLenBytesInPlace(data); err != nil {
		return fmt.Errorf("ftm: envelope payload: %w", err)
	}
	// Optional trace trailer: absent or malformed means "unsampled" —
	// never a decode failure, so trailerless senders stay compatible.
	e.Trace = telemetry.SpanContext{}
	if len(data) > 0 {
		if tid, rest, terr := transport.ReadUvarint(data); terr == nil {
			if sid, _, serr := transport.ReadUvarint(rest); serr == nil {
				e.Trace = telemetry.SpanContext{TraceID: tid, SpanID: sid}
			}
		}
	}
	return nil
}

// decodeEnvelope is the apply-side decode: the concrete call keeps the
// envelope on the caller's stack, where transport.Decode's any
// parameter would heap-allocate it on every inter-replica message.
// Non-fast frames take the gob compatibility arm via transport.Decode.
func decodeEnvelope(data []byte, e *replicaEnvelope) error {
	if len(data) == 0 || data[0] != transport.FastTag {
		return transport.Decode(data, e)
	}
	return e.DecodeFast(data[1:])
}

// isPeerRefusal reports whether a failed inter-replica call was
// answered by a live peer refusing the message for its role (the
// ErrNotSlave guard during a takeover or split brain). The error text
// is matched because remote errors cross the TCP transport as strings.
// A refusal must not resolve a wave "degraded": degraded mode releases
// replies without any peer holding the state, which is only safe when
// the failure detector has actually declared the peer dead. A refusing
// peer is alive — the wave fails instead, and the client's
// at-most-once retry re-ships once the peer settles back into its
// role.
func isPeerRefusal(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrNotSlave.Error())
}

// peerContent bridges the FTM composite to the remote replica set:
// outbound inter-replica calls go through its single "send" service, so
// the rest of the FTM never touches the transport directly. With one
// peer it unicasts; with several (the paper's "multiple Backups or
// Followers" variant) it broadcasts best-effort, succeeding when at
// least one peer answered.
type peerContent struct {
	mu      sync.Mutex
	ep      transport.Endpoint
	peers   []transport.Address
	system  string
	group   string
	timeout time.Duration
}

func newPeerContent(ep transport.Endpoint, peer transport.Address, system, group string) *peerContent {
	p := &peerContent{ep: ep, system: system, group: group, timeout: 2 * time.Second}
	if peer != "" {
		p.peers = []transport.Address{peer}
	}
	return p
}

var _ component.Content = (*peerContent)(nil)

// parsePeers accepts a single address, a comma-separated list, or typed
// slices — "peers" must stay settable from an fscript `set` statement.
func parsePeers(value any) ([]transport.Address, error) {
	switch v := value.(type) {
	case string:
		if v == "" {
			return nil, nil
		}
		var out []transport.Address
		for _, part := range strings.Split(v, ",") {
			part = strings.TrimSpace(part)
			if part != "" {
				out = append(out, transport.Address(part))
			}
		}
		return out, nil
	case transport.Address:
		if v == "" {
			return nil, nil
		}
		return []transport.Address{v}, nil
	case []string:
		out := make([]transport.Address, 0, len(v))
		for _, s := range v {
			if s != "" {
				out = append(out, transport.Address(s))
			}
		}
		return out, nil
	case []transport.Address:
		return append([]transport.Address(nil), v...), nil
	default:
		return nil, fmt.Errorf("ftm: peer address property is %T", value)
	}
}

// SetProperty accepts peer-set updates (reconfiguration when replicas
// are replaced or the membership changes).
func (p *peerContent) SetProperty(name string, value any) error {
	switch name {
	case "peer", "peers":
		peers, err := parsePeers(value)
		if err != nil {
			return err
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		p.peers = peers
		return nil
	default:
		return nil // unknown properties are inert
	}
}

// Peers returns the current peer set.
func (p *peerContent) Peers() []transport.Address {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]transport.Address(nil), p.peers...)
}

func (p *peerContent) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	if service != SvcSend {
		return component.Message{}, fmt.Errorf("%w: service %q on peer", component.ErrNotFound, service)
	}
	// The message kind rides the component message's Op, so a send needs
	// no metadata map; OpCall with a MetaKind entry is the compatibility
	// form.
	kind := msg.Op
	if kind == OpCall {
		kind = msg.MetaValue(MetaKind)
	}
	if kind == "" {
		return component.Message{}, fmt.Errorf("ftm: peer.send without a message kind")
	}
	payload, _ := msg.Payload.([]byte)

	p.mu.Lock()
	ep, peers, system, group, timeout := p.ep, append([]transport.Address(nil), p.peers...), p.system, p.group, p.timeout
	p.mu.Unlock()
	if len(peers) == 0 {
		return component.Message{}, ErrNoPeer
	}
	env := replicaEnvelope{Kind: kind, From: string(ep.Addr()), System: system, Group: group, Payload: payload}
	sp := telemetry.DefaultSpans().Start(
		telemetry.ParseSpanContext(msg.MetaValue(MetaTrace)), "ftm.peer.ship")
	if sp != nil {
		sp.SetAttr("kind", kind)
		sp.SetAttr("peers", strconv.Itoa(len(peers)))
		env.Trace = sp.Context()
		defer sp.End()
	}
	// Concrete AppendFast call: EncodePooled would box the envelope on
	// every send (per request under LFR forwarding).
	data := env.AppendFast(transport.FastFrame())

	// Best-effort broadcast: every peer is attempted and the reply of the
	// lowest-indexed success is returned; total failure reports ErrNoPeer.
	if len(peers) == 1 {
		callCtx, cancel := context.WithTimeout(ctx, timeout)
		reply, err := ep.Call(callCtx, peers[0], KindReplica, data)
		cancel()
		// The envelope buffer recycles once the call resolved either way;
		// only an ambiguous outcome (context expiry with the handler
		// possibly still reading it) leaks it to the garbage collector.
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			transport.PutBuf(data)
		}
		if err != nil {
			sp.SetAttr("outcome", "error")
			if isPeerRefusal(err) {
				return component.Message{}, fmt.Errorf("ftm: peer refused: %w", err)
			}
			return component.Message{}, fmt.Errorf("%w: %v", ErrNoPeer, err)
		}
		return component.NewMessage("ok", reply), nil
	}
	// Multiple peers fan out concurrently, so a dead peer costs the
	// broadcast max(timeout) instead of stacking its timeout in front of
	// every live peer behind it.
	type outcome struct {
		idx   int
		reply []byte
		err   error
	}
	results := make(chan outcome, len(peers))
	for i, peer := range peers {
		go func(i int, peer transport.Address) {
			callCtx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			reply, err := ep.Call(callCtx, peer, KindReplica, data)
			results <- outcome{idx: i, reply: reply, err: err}
		}(i, peer)
	}
	best := -1
	var firstReply []byte
	var lastErr, refusal error
	for range peers {
		r := <-results
		if r.err != nil {
			lastErr = r.err
			if isPeerRefusal(r.err) {
				refusal = r.err
			}
			continue
		}
		if best == -1 || r.idx < best {
			best = r.idx
			firstReply = r.reply
		}
	}
	if best == -1 {
		sp.SetAttr("outcome", "error")
		// A refusal among the failures means at least one peer is alive:
		// the broadcast must not look like "no live peer" to the wave.
		if refusal != nil {
			return component.Message{}, fmt.Errorf("ftm: peer refused: %w", refusal)
		}
		return component.Message{}, fmt.Errorf("%w: %v", ErrNoPeer, lastErr)
	}
	return component.NewMessage("ok", firstReply), nil
}
