package ftm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// TypeProtocol is the component type of the protocol component.
const TypeProtocol = "ftm.protocol"

// Control is the protocol's backdoor to the replica runtime for
// decisions that transcend one request: failover on peer loss and
// fail-silent shutdown on repeated assertion failures.
type Control interface {
	// OnPeerChange fires on failure-detector transitions.
	OnPeerChange(suspected bool)
	// OnAssertionPermanent fires when local assertion failures exceed the
	// permanent-fault threshold; the replica must fall silent.
	OnAssertionPermanent()
}

// protocolContent is the stable heart of every FTM composite: the
// factorized FaultToleranceProtocol (client communication, at-most-once
// semantics, forwarding to the processing step) and DuplexProtocol
// (inter-replica dispatch, roles) concerns of the two design loops
// (Figure 3). Differential transitions never replace it.
type protocolContent struct {
	brickRefs

	mu             sync.Mutex
	role           core.Role
	masterSince    time.Time
	masterAlone    bool
	system         string
	control        Control
	assertFailures int
	assertLimit    int

	// inflight deduplicates concurrent deliveries of one request
	// identity. The reply log only filters duplicates of *completed*
	// executions; a retransmission racing the original (a client timeout
	// retry, or a redelivery while the original waits on its commit wave)
	// would pass the lookup and execute a second time without it.
	inflightMu sync.Mutex
	inflight   map[inflightKey]chan struct{}
}

// inflightKey identifies one client request across delivery attempts.
type inflightKey struct {
	clientID string
	seq      uint64
}

func newProtocolContent(system string) *protocolContent {
	return &protocolContent{
		role: core.RoleSlave, system: system, assertLimit: 3,
		inflight: make(map[inflightKey]chan struct{}),
	}
}

var (
	_ component.Content          = (*protocolContent)(nil)
	_ component.RefReceiver      = (*protocolContent)(nil)
	_ component.PropertyReceiver = (*protocolContent)(nil)
)

// SetProperty accepts role changes ("role"), the control backdoor
// ("control") and the permanent-fault threshold ("assertLimit").
func (p *protocolContent) SetProperty(name string, value any) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch name {
	case "role":
		var role core.Role
		switch v := value.(type) {
		case string:
			role = core.Role(v)
		case core.Role:
			role = v
		default:
			return fmt.Errorf("ftm: role property is %T", value)
		}
		if role == core.RoleMaster && p.role != core.RoleMaster {
			p.masterSince = time.Now()
		}
		p.role = role
	case "control":
		ctrl, ok := value.(Control)
		if !ok && value != nil {
			return fmt.Errorf("ftm: control property is %T", value)
		}
		p.control = ctrl
	case "assertLimit":
		limit, ok := value.(int)
		if !ok {
			return fmt.Errorf("ftm: assertLimit property is %T", value)
		}
		p.assertLimit = limit
	case "masterAlone":
		alone, ok := value.(bool)
		if !ok {
			return fmt.Errorf("ftm: masterAlone property is %T", value)
		}
		p.masterAlone = alone
	}
	return nil
}

// Role returns the current replica role.
func (p *protocolContent) Role() core.Role {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.role
}

func (p *protocolContent) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	switch service {
	case SvcRequest:
		return p.handleRequest(ctx, msg)
	case SvcReplica:
		return p.handleReplica(ctx, msg)
	case SvcControl:
		return p.handleControl(ctx, msg)
	default:
		return component.Message{}, fmt.Errorf("%w: service %q on protocol", component.ErrNotFound, service)
	}
}

// --- Client requests ---------------------------------------------------

func (p *protocolContent) handleRequest(ctx context.Context, msg component.Message) (component.Message, error) {
	switch pl := msg.Payload.(type) {
	case *reqCarrier:
		if p.Role() != core.RoleMaster {
			pl.Resp = rpc.Response{ClientID: pl.Req.ClientID, Seq: pl.Req.Seq, Status: rpc.StatusNotMaster}
		} else {
			pl.Resp = p.execute(ctx, pl.Req)
		}
		return component.Message{Op: "reply", Payload: pl}, nil
	case rpc.Request:
		// Compatibility arm for direct invocations that box a Request.
		if p.Role() != core.RoleMaster {
			return component.NewMessage("reply", rpc.Response{
				ClientID: pl.ClientID, Seq: pl.Seq, Status: rpc.StatusNotMaster,
			}), nil
		}
		return component.NewMessage("reply", p.execute(ctx, pl)), nil
	default:
		return component.Message{}, fmt.Errorf("ftm: request payload is %T", msg.Payload)
	}
}

// execute runs one request through at-most-once filtering and the
// Before-Proceed-After pipeline.
func (p *protocolContent) execute(ctx context.Context, req rpc.Request) rpc.Response {
	spans := telemetry.DefaultSpans()
	sp := spans.Start(req.Trace, "ftm.execute")
	if sp != nil {
		// Everything downstream — stage spans, wave ships, peer sends,
		// the forwarded request on the follower — nests under execute.
		sp.SetAttr("op", req.Op)
		sp.SetAttr("req", req.ID())
		req.Trace = sp.Context()
		defer sp.End()
	}
	log := logClient{svc: p.ref("log")}
	key := inflightKey{clientID: req.ClientID, seq: req.Seq}
	var mine chan struct{}
	for {
		if prev, found, err := log.lookup(ctx, req.ClientID, req.Seq); err == nil && found {
			mReplayHits.Inc()
			sp.SetAttr("replayed", "true")
			// The logged reply may predate the last acknowledged replica
			// synchronization (its original After failed mid-ship, or its
			// commit wave is still in flight). Releasing it anyway would let
			// a failover lose a reply the client has seen, so the After brick
			// must first confirm coverage — for the synchronizing bricks that
			// means riding a commit wave.
			tReplay := time.Now()
			if _, ferr := p.afterSpecialPayload(ctx, OpFlush, prev, req.Trace); ferr != nil {
				return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
					Status: rpc.StatusUnavailable, Err: ferr.Error()}
			}
			// The replay span marks a reply served from the log — after a
			// failover it is what links the redelivery to the original
			// execution's trace (same deterministic trace ID).
			if req.Trace.Valid() {
				spans.Add(req.Trace, "ftm.replay", tReplay, time.Since(tReplay), "req", req.ID())
			}
			return prev
		}
		p.inflightMu.Lock()
		cur, running := p.inflight[key]
		if !running {
			mine = make(chan struct{})
			p.inflight[key] = mine
			p.inflightMu.Unlock()
			break // this delivery executes
		}
		p.inflightMu.Unlock()
		// Another delivery of the same request is executing; wait for it
		// and re-check the log — its reply appears there on success, and on
		// failure this delivery claims the execution itself.
		select {
		case <-cur:
		case <-ctx.Done():
			return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
				Status: rpc.StatusUnavailable, Err: ctx.Err().Error()}
		}
	}
	defer func() {
		// Delete before close: a waiter that wakes re-checks the log and,
		// when this execution failed pre-record, claims a fresh slot.
		p.inflightMu.Lock()
		delete(p.inflight, key)
		p.inflightMu.Unlock()
		close(mine)
	}()

	mRequests.Inc()
	call := getCall()
	call.Req = req
	defer putCall(call)
	timed := stageTimed(req.Trace.Valid())
	err := func() error {
		var t0, t1, t2 time.Time
		if timed {
			t0 = time.Now()
		}
		if err := (brickClient{svc: p.ref("before")}).run(ctx, call); err != nil {
			return err
		}
		if timed {
			// One clock read ends Before and starts Proceed; the stage
			// spans reuse the same reads.
			t1 = time.Now()
			mStageBefore.Observe(t1.Sub(t0))
			spans.Add(req.Trace, "ftm.before", t0, t1.Sub(t0))
		}
		if err := (brickClient{svc: p.ref("proceed")}).run(ctx, call); err != nil {
			return err
		}
		if timed {
			t2 = time.Now()
			mStageProceed.Observe(t2.Sub(t1))
			spans.Add(req.Trace, "ftm.proceed", t1, t2.Sub(t1))
		}
		return nil
	}()
	switch {
	case err == nil:
	case errors.Is(err, ErrAssertionFailed):
		// A&Duplex: the local result violated the safety assertion;
		// re-execute on the other node (§3.2.1). The peer executed and
		// logged the request itself, so no After runs locally.
		resp, escErr := p.escalateAssertion(ctx, req)
		if escErr != nil {
			return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
				Status: rpc.StatusUnavailable, Err: escErr.Error()}
		}
		call.Result = resp
		if recErr := log.record(ctx, &call.Result); recErr != nil {
			return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
				Status: rpc.StatusUnavailable, Err: recErr.Error()}
		}
		return call.Result
	case errors.Is(err, ErrUnrecoverable):
		return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
			Status: rpc.StatusAppError, Err: err.Error()}
	default:
		return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
			Status: rpc.StatusUnavailable, Err: err.Error()}
	}

	// Record the reply before the After brick runs, so a checkpoint or
	// commit shipped by After carries this request's reply: a failover
	// right after this request must replay it, never re-execute it.
	if recErr := log.record(ctx, &call.Result); recErr != nil {
		return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
			Status: rpc.StatusUnavailable, Err: recErr.Error()}
	}
	var tAfter time.Time
	if timed {
		tAfter = time.Now()
	}
	if aErr := (brickClient{svc: p.ref("after")}).run(ctx, call); aErr != nil {
		// The operation executed and its reply is logged: a client
		// retrying this sequence number will be served the logged reply.
		return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
			Status: rpc.StatusUnavailable, Err: aErr.Error()}
	}
	if timed {
		dAfter := time.Since(tAfter)
		mStageAfter.Observe(dAfter)
		spans.Add(req.Trace, "ftm.after", tAfter, dAfter)
	}
	return call.Result
}

// stageTimed strides the stage-latency clock reads: at full rate the
// three boundary time.Now calls per request cost ~5% of a saturated
// core, so only every eighth request — plus every traced one, whose
// stage spans need real timestamps — measures the stages. The stage
// histograms keep a representative latency distribution; their count
// series undercounts by the stride, which nothing consumes.
const stageStride = 8

var stageTick atomic.Uint64

func stageTimed(traced bool) bool {
	return traced || stageTick.Add(1)%stageStride == 0
}

// escalateAssertion ships the request to the peer for clean re-execution
// and tracks local assertion failures toward the permanent-fault
// threshold.
func (p *protocolContent) escalateAssertion(ctx context.Context, req rpc.Request) (rpc.Response, error) {
	mAssertEscalations.Inc()
	p.mu.Lock()
	p.assertFailures++
	failures, limit, ctrl := p.assertFailures, p.assertLimit, p.control
	p.mu.Unlock()

	data, err := transport.Encode(req)
	if err != nil {
		return rpc.Response{}, err
	}
	replyData, err := (peerClient{svc: p.ref("peer")}).call(ctx, MsgAssertExec, data)
	if err != nil {
		// No healthy peer to re-execute on: the value fault cannot be
		// masked. Report unavailability; repeated failures below will
		// silence this replica.
		if failures >= limit && ctrl != nil {
			ctrl.OnAssertionPermanent()
		}
		return rpc.Response{}, fmt.Errorf("ftm: assertion escalation: %w", err)
	}
	var resp rpc.Response
	if err := transport.Decode(replyData, &resp); err != nil {
		return rpc.Response{}, err
	}
	if failures >= limit && ctrl != nil {
		// This host fails its assertion persistently: treat as a
		// permanent value fault and fall silent so the peer takes over.
		ctrl.OnAssertionPermanent()
	}
	return resp, nil
}

// --- Inter-replica messages ---------------------------------------------

// roleInfo is the MsgRoleQuery reply payload.
type roleInfo struct {
	Role            string
	MasterSinceNano int64
}

var (
	_ transport.FastMarshaler   = roleInfo{}
	_ transport.FastUnmarshaler = (*roleInfo)(nil)
)

// AppendFast implements transport.FastMarshaler.
func (ri roleInfo) AppendFast(buf []byte) []byte {
	buf = transport.AppendLenString(buf, ri.Role)
	return transport.AppendUvarint(buf, uint64(ri.MasterSinceNano))
}

// DecodeFast implements transport.FastUnmarshaler.
func (ri *roleInfo) DecodeFast(data []byte) error {
	var err error
	if ri.Role, data, err = transport.ReadLenString(data); err != nil {
		return fmt.Errorf("ftm: roleInfo role: %w", err)
	}
	var since uint64
	if since, _, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("ftm: roleInfo since: %w", err)
	}
	ri.MasterSinceNano = int64(since)
	return nil
}

// ackReply is the static acknowledgement body of inter-replica applies;
// shared so the hot apply path never allocates it. Never pool it: its
// backing array must stay immutable.
var ackReply = []byte("ack")

func (p *protocolContent) handleReplica(ctx context.Context, msg component.Message) (component.Message, error) {
	payload, _ := msg.Payload.([]byte)
	// The replica server's apply span context, set by the transport
	// handler when the inbound envelope carried a sampled trace; zero
	// (and therefore inert) otherwise.
	trace := telemetry.ParseSpanContext(msg.MetaValue(MetaTrace))

	// Slave-role messages are refused on a master: after a spurious
	// promotion (split brain), running the follower path on a master
	// would forward the request straight back, ping-ponging executions
	// between the two masters.
	switch msg.Op {
	case MsgPBRCheckpoint, MsgPBRDelta, MsgLFRExec, MsgLFRCommit, MsgLFRCommitBatch, MsgXPAExec:
		if p.Role() != core.RoleSlave {
			return component.Message{}, fmt.Errorf("%w: refusing %q", ErrNotSlave, msg.Op)
		}
	}

	switch msg.Op {
	case MsgRoleQuery:
		p.mu.Lock()
		info := roleInfo{Role: string(p.role), MasterSinceNano: p.masterSince.UnixNano()}
		p.mu.Unlock()
		data, err := transport.Encode(info)
		if err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", data), nil

	case MsgPBRCheckpoint:
		if _, err := p.afterSpecial(ctx, "checkpoint", payload, trace); err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", ackReply), nil

	case MsgPBRDelta:
		reply, err := p.afterSpecial(ctx, "delta", payload, trace)
		if err != nil {
			return component.Message{}, err
		}
		// The apply brick's reply bytes travel back to the primary: nil
		// on success ("ack"), "resync" on a base-version mismatch.
		if data, ok := reply.Payload.([]byte); ok && data != nil {
			return component.NewMessage("ok", data), nil
		}
		return component.NewMessage("ok", ackReply), nil

	case MsgPBRPull:
		data, _, _, err := buildCheckpoint(ctx,
			stateClient{svc: p.ref("state")},
			logClient{svc: p.ref("log")}, 0)
		if err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", data), nil

	case MsgLFRExec:
		var req rpc.Request
		if err := transport.Decode(payload, &req); err != nil {
			return component.Message{}, err
		}
		if trace.Valid() {
			// Parent the follower's execution on the apply span rather than
			// the leader-side context the forwarded request encoded.
			req.Trace = trace
		}
		resp := p.followerExecute(ctx, req)
		// The reply buffer's ownership transfers to the caller with the
		// reply bytes; the transport's consumer recycles it.
		data, err := transport.EncodePooled(resp)
		if err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", data), nil

	case MsgLFRCommit:
		var cm commitMsg
		if err := transport.Decode(payload, &cm); err != nil {
			return component.Message{}, err
		}
		if _, err := p.afterSpecialPayload(ctx, "commit", cm, trace); err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", ackReply), nil

	case MsgLFRCommitBatch:
		// The batch decodes into a pooled list (its capacity survives from
		// wave to wave) and crosses the brick boundary by pointer; the log
		// copies the entries, so the list comes back to the pool here.
		batch := getRespList()
		if err := transport.Decode(payload, batch); err != nil {
			putRespList(batch)
			return component.Message{}, err
		}
		_, err := p.afterSpecialPayload(ctx, "commit.batch", batch, trace)
		putRespList(batch)
		if err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", ackReply), nil

	case MsgXPAExec:
		var m xpaMsg
		if err := transport.Decode(payload, &m); err != nil {
			return component.Message{}, err
		}
		if _, err := p.afterSpecialPayload(ctx, "xpa.exec", m, trace); err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", ackReply), nil

	case MsgAssertExec:
		var req rpc.Request
		if err := transport.Decode(payload, &req); err != nil {
			return component.Message{}, err
		}
		resp, err := p.remoteAssertExecute(ctx, req)
		if err != nil {
			return component.Message{}, err
		}
		data, err := transport.Encode(resp)
		if err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", data), nil

	default:
		return component.Message{}, fmt.Errorf("%w: replica message %q", component.ErrUnknownOp, msg.Op)
	}
}

// afterSpecial drives the syncAfter brick with a non-pipeline operation
// carrying raw bytes. A valid trace rides the message metadata so the
// brick can link the apply (or the coverage wave it rides) to the
// originating request's trace.
func (p *protocolContent) afterSpecial(ctx context.Context, op string, payload []byte, trace telemetry.SpanContext) (component.Message, error) {
	after := p.ref("after")
	if after == nil {
		return component.Message{}, component.ErrRefUnwired
	}
	msg := component.Message{Op: op, Payload: payload}
	if trace.Valid() {
		msg = msg.WithMeta(MetaTrace, trace.String())
	}
	return after.Invoke(ctx, msg)
}

// afterSpecialPayload drives the syncAfter brick with a typed payload.
func (p *protocolContent) afterSpecialPayload(ctx context.Context, op string, payload any, trace telemetry.SpanContext) (component.Message, error) {
	after := p.ref("after")
	if after == nil {
		return component.Message{}, component.ErrRefUnwired
	}
	msg := component.Message{Op: op, Payload: payload}
	if trace.Valid() {
		msg = msg.WithMeta(MetaTrace, trace.String())
	}
	return after.Invoke(ctx, msg)
}

// followerExecute runs a forwarded request through the follower's own
// pipeline (Receive / Compute / Process-notification), with at-most-once
// filtering against the follower's reply log.
func (p *protocolContent) followerExecute(ctx context.Context, req rpc.Request) rpc.Response {
	spans := telemetry.DefaultSpans()
	sp := spans.Start(req.Trace, "ftm.execute")
	if sp != nil {
		sp.SetAttr("op", req.Op)
		sp.SetAttr("req", req.ID())
		sp.SetAttr("role", "follower")
		req.Trace = sp.Context()
		defer sp.End()
	}
	log := logClient{svc: p.ref("log")}
	if prev, found, err := log.lookup(ctx, req.ClientID, req.Seq); err == nil && found {
		mReplayHits.Inc()
		sp.SetAttr("replayed", "true")
		return prev
	}
	mRequests.Inc()
	call := getCall()
	call.Req = req
	defer putCall(call)
	timed := stageTimed(req.Trace.Valid())
	run := func() error {
		// One clock read per stage boundary: each read ends one stage and
		// starts the next; the stage spans reuse the same reads.
		var t0, t1, t2 time.Time
		if timed {
			t0 = time.Now()
		}
		if err := (brickClient{svc: p.ref("before")}).run(ctx, call); err != nil {
			return err
		}
		if timed {
			t1 = time.Now()
			mStageBefore.Observe(t1.Sub(t0))
			spans.Add(req.Trace, "ftm.before", t0, t1.Sub(t0))
		}
		if err := (brickClient{svc: p.ref("proceed")}).run(ctx, call); err != nil {
			return err
		}
		if timed {
			t2 = time.Now()
			mStageProceed.Observe(t2.Sub(t1))
			spans.Add(req.Trace, "ftm.proceed", t1, t2.Sub(t1))
		}
		if err := (brickClient{svc: p.ref("after")}).run(ctx, call); err != nil {
			return err
		}
		if timed {
			d2 := time.Since(t2)
			mStageAfter.Observe(d2)
			spans.Add(req.Trace, "ftm.after", t2, d2)
		}
		return nil
	}
	if err := run(); err != nil {
		if errors.Is(err, ErrAssertionFailed) {
			// The follower's own computation failed its assertion: count
			// toward this host's permanent-fault threshold.
			p.mu.Lock()
			p.assertFailures++
			failures, limit, ctrl := p.assertFailures, p.assertLimit, p.control
			p.mu.Unlock()
			if failures >= limit && ctrl != nil {
				ctrl.OnAssertionPermanent()
			}
		}
		return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
			Status: rpc.StatusUnavailable, Err: err.Error()}
	}
	return call.Result
}

// remoteAssertExecute serves a peer's escalated request: execute locally,
// check the assertion, and log the reply (it becomes the client-visible
// outcome).
func (p *protocolContent) remoteAssertExecute(ctx context.Context, req rpc.Request) (rpc.Response, error) {
	log := logClient{svc: p.ref("log")}
	if prev, found, err := log.lookup(ctx, req.ClientID, req.Seq); err == nil && found {
		return prev, nil
	}
	call := getCall()
	call.Req = req
	defer putCall(call)
	if err := (processClient{svc: p.ref("server")}).run(ctx, call); err != nil {
		return rpc.Response{}, err
	}
	if call.Result.Status == rpc.StatusOK {
		ok, err := (assertClient{svc: p.ref("assert")}).check(ctx, call)
		if err != nil {
			return rpc.Response{}, err
		}
		if !ok {
			return rpc.Response{}, fmt.Errorf("%w: on both replicas", ErrAssertionFailed)
		}
	}
	if err := log.record(ctx, &call.Result); err != nil {
		return rpc.Response{}, err
	}
	return call.Result, nil
}

// --- Control -------------------------------------------------------------

func (p *protocolContent) handleControl(ctx context.Context, msg component.Message) (component.Message, error) {
	switch msg.Op {
	case OpPeerChange:
		suspected, _ := msg.Payload.(bool)
		p.mu.Lock()
		ctrl := p.control
		if p.role == core.RoleMaster {
			p.masterAlone = suspected
		}
		p.mu.Unlock()
		if ctrl != nil {
			ctrl.OnPeerChange(suspected)
		}
		return component.NewMessage("ok", nil), nil
	case OpRole:
		return component.NewMessage("ok", string(p.Role())), nil
	case OpMasterOnly:
		p.mu.Lock()
		alone := p.masterAlone
		p.mu.Unlock()
		return component.NewMessage("ok", alone), nil
	default:
		return component.Message{}, fmt.Errorf("%w: %q on protocol.control", component.ErrUnknownOp, msg.Op)
	}
}
