package ftm

import (
	"context"
	"sync"

	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

// groupMux dispatches one endpoint's request and inter-replica traffic
// to the replicas sharing it, keyed by the group ID stamped on the
// wire. One mux exists per live endpoint; it installs the endpoint's
// rpc and replica handlers exactly once, so N groups in one process
// coexist without clobbering each other's registrations. A replica
// leaves the mux when its host's crash switch trips; the mux (and its
// endpoint key) are dropped when the last replica leaves, so crashed
// test systems do not accumulate.
type groupMux struct {
	mu       sync.Mutex
	byGroup  map[string]*Replica
	bySystem map[string]*Replica
	order    []*Replica
	// dead marks a mux that emptied and was dropped from the registry;
	// a racing add must build a fresh mux instead of joining a corpse.
	dead    bool
	unserve func()
}

// muxes maps live endpoints to their mux. Endpoints are compared by
// identity, which is what handler registration keys on too.
var muxes sync.Map // transport.Endpoint -> *groupMux

// joinMux registers r on its endpoint's mux, installing the shared
// handlers if r is the endpoint's first replica, and arranges for r to
// leave when its host crashes.
func joinMux(ep transport.Endpoint, r *Replica) {
	for {
		v, _ := muxes.LoadOrStore(ep, &groupMux{
			byGroup:  make(map[string]*Replica),
			bySystem: make(map[string]*Replica),
		})
		m := v.(*groupMux)
		if m.add(ep, r) {
			r.h.CrashSwitch().OnTrip(func() { m.remove(ep, r) })
			return
		}
		// The mux died between Load and add: retry against a fresh one.
		muxes.CompareAndDelete(ep, m)
	}
}

// add registers r, installing the endpoint handlers on first use. A
// same-group re-registration replaces the old entry (latest wins: a
// restarted host redeploys its replica over the stale object). Returns
// false if the mux is dead.
func (m *groupMux) add(ep transport.Endpoint, r *Replica) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return false
	}
	if m.unserve == nil {
		m.unserve = m.serve(ep)
	}
	old := m.byGroup[r.Group()]
	m.byGroup[r.Group()] = r
	m.bySystem[r.System()] = r
	if old != nil {
		for i, rep := range m.order {
			if rep == old {
				m.order[i] = r
				return true
			}
		}
	}
	m.order = append(m.order, r)
	return true
}

// remove unregisters r; the last removal kills the mux and drops it
// from the registry so the endpoint (and the composites its handlers
// close over) can be collected.
func (m *groupMux) remove(ep transport.Endpoint, r *Replica) {
	m.mu.Lock()
	if m.byGroup[r.Group()] == r {
		delete(m.byGroup, r.Group())
	}
	if m.bySystem[r.System()] == r {
		delete(m.bySystem, r.System())
	}
	for i, rep := range m.order {
		if rep == r {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	dead := len(m.order) == 0
	if dead {
		// Uninstall before the death of the mux becomes observable: a
		// racing join builds its replacement mux only after seeing dead
		// under this lock, so its handlers strictly follow these.
		if m.unserve != nil {
			m.unserve()
			m.unserve = nil
		}
		ep.Handle(KindReplica, nil)
		m.dead = true
	}
	m.mu.Unlock()
	if dead {
		muxes.CompareAndDelete(ep, m)
	}
}

// serve installs the shared endpoint handlers; returns the rpc
// unregister hook. Called under m.mu on first add.
func (m *groupMux) serve(ep transport.Endpoint) func() {
	unserve := rpc.Serve(ep, func(ctx context.Context, req *rpc.Request) rpc.Response {
		rep := m.forGroup(req.Group)
		if rep == nil {
			return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
				Status: rpc.StatusUnavailable,
				Err:    "ftm: no replica for group " + groupLabel(req.Group)}
		}
		return rep.serveRequest(ctx, req)
	})
	ep.Handle(KindReplica, func(ctx context.Context, p transport.Packet) ([]byte, error) {
		var env replicaEnvelope
		if err := decodeEnvelope(p.Payload, &env); err != nil {
			return nil, err
		}
		rep := m.forEnvelope(&env)
		if rep == nil {
			return nil, ErrNoReplicaForGroup
		}
		return rep.serveReplica(ctx, &env)
	})
	return unserve
}

// forGroup resolves the serving replica for a request's group stamp.
// An exact group match wins. An unstamped request reaches the sole
// replica (the unsharded deployment shape). A stamped request on an
// endpoint whose sole replica declares no group is served too —
// unsharded servers ignore the stamp, so an N=1 router fronting a
// plain system just works. Everything else is a routing error.
func (m *groupMux) forGroup(group string) *Replica {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rep, ok := m.byGroup[group]; ok {
		return rep
	}
	if len(m.order) == 1 {
		if sole := m.order[0]; sole.Group() == "" {
			return sole
		}
	}
	return nil
}

// forEnvelope resolves the serving replica for an inter-replica
// message: by group stamp, then by system name (covering pre-group
// peers), then the sole replica.
func (m *groupMux) forEnvelope(env *replicaEnvelope) *Replica {
	m.mu.Lock()
	defer m.mu.Unlock()
	if env.Group != "" {
		if rep, ok := m.byGroup[env.Group]; ok {
			return rep
		}
	}
	if rep, ok := m.bySystem[env.System]; ok {
		return rep
	}
	if len(m.order) == 1 {
		return m.order[0]
	}
	return nil
}

// groupLabel renders a group ID for error messages.
func groupLabel(group string) string {
	if group == "" {
		return "(default)"
	}
	return group
}
