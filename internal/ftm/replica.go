package ftm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/fscript"
	"resilientft/internal/host"
	"resilientft/internal/rpc"
	"resilientft/internal/stablestore"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// Replica is one half of a fault-tolerant application: an FTM composite
// deployed on a host, the transport glue routing client and inter-replica
// traffic into it, and the failover logic (promotion on peer loss,
// fail-silence on persistent assertion failures).
type Replica struct {
	h    *host.Host
	path string

	mu        sync.Mutex
	cfg       ReplicaConfig
	promoting bool
	// masterSince orders competing masters for split-brain resolution:
	// the younger mastership yields.
	masterSince time.Time
	events      []string
	onEvent     func(string)

	// reconfigMu serializes architecture reconfigurations: an adaptation
	// transition and a failover promotion must not interleave on the
	// same composite.
	reconfigMu sync.Mutex

	// shardRequests and shardReplicaMsgs are the shard-labeled traffic
	// series, resolved once at deployment; nil outside sharded
	// deployments so the unsharded hot path pays nothing.
	shardRequests    *telemetry.Counter
	shardReplicaMsgs *telemetry.Counter

	// boundaryMu guards the resolved boundary-service cache. The cached
	// endpoints re-resolve promotions and respect the composite gate on
	// every call, so they stay valid across brick swaps; the cache is
	// keyed on the runtime so a host restart invalidates it.
	boundaryMu  sync.RWMutex
	boundaryRT  *component.Runtime
	boundarySvc map[string]component.Service
}

// LockReconfig acquires the replica's reconfiguration lock and returns
// the unlock function. The adaptation engine and the promotion path both
// hold it across their stop-script-start sequence.
func (r *Replica) LockReconfig() func() {
	r.reconfigMu.Lock()
	return r.reconfigMu.Unlock
}

// ReplicaOption configures a Replica.
type ReplicaOption func(*Replica)

// WithEventHook registers a callback receiving replica life-cycle events
// (promotions, fail-silence, degraded mode), useful in tests and demos.
func WithEventHook(f func(string)) ReplicaOption {
	return func(r *Replica) { r.onEvent = f }
}

var _ Control = (*Replica)(nil)

// NewReplica deploys cfg's FTM on h and wires the host's transport into
// the composite. The replica commits its configuration to the host's
// stable store.
func NewReplica(ctx context.Context, h *host.Host, cfg ReplicaConfig, opts ...ReplicaOption) (*Replica, error) {
	r := &Replica{h: h, cfg: cfg}
	if cfg.Role == core.RoleMaster {
		r.masterSince = time.Now()
	}
	if cfg.Group != "" {
		r.shardRequests = telemetry.Default().Counter("ftm_shard_requests_total", "shard", cfg.Group)
		r.shardReplicaMsgs = telemetry.Default().Counter("ftm_shard_replica_msgs_total", "shard", cfg.Group)
	}
	for _, o := range opts {
		o(r)
	}
	path, err := DeployFTM(ctx, h, cfg, r)
	if err != nil {
		return nil, err
	}
	r.path = path
	r.registerTransport()
	if err := r.commitConfig(); err != nil {
		return nil, err
	}
	r.event(fmt.Sprintf("deployed %s as %s", cfg.FTM, cfg.Role))
	return r, nil
}

func (r *Replica) event(s string) {
	r.mu.Lock()
	r.events = append(r.events, s)
	hook := r.onEvent
	system := r.cfg.System
	r.mu.Unlock()
	telemetry.Emit("replica", s, 0, "host", r.h.Name(), "system", system)
	if hook != nil {
		hook(s)
	}
}

// Events returns the replica's life-cycle event log.
func (r *Replica) Events() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

// Host returns the replica's host.
func (r *Replica) Host() *host.Host { return r.h }

// Path returns the FTM composite path on the host runtime.
func (r *Replica) Path() string { return r.path }

// System returns the protected application's name.
func (r *Replica) System() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.System
}

// Group returns the replica group (shard) ID, empty in unsharded
// deployments.
func (r *Replica) Group() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.Group
}

// FTM returns the currently deployed mechanism.
func (r *Replica) FTM() core.ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.FTM
}

// SetFTM records the mechanism after a committed transition (called by
// the adaptation engine).
func (r *Replica) SetFTM(id core.ID) {
	r.mu.Lock()
	r.cfg.FTM = id
	r.mu.Unlock()
	if err := r.commitConfig(); err != nil {
		r.event(fmt.Sprintf("stable-store commit failed: %v", err))
	}
}

// Role returns the replica's current role.
func (r *Replica) Role() core.Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.Role
}

// App returns the protected application instance.
func (r *Replica) App() Application {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.App
}

// commitConfig records the active configuration in stable storage — the
// recovery-of-adaptation anchor (§5.3).
func (r *Replica) commitConfig() error {
	r.mu.Lock()
	rec := stablestore.ConfigRecord{
		System:    r.cfg.System,
		FTM:       string(r.cfg.FTM),
		Committed: time.Now(),
	}
	r.mu.Unlock()
	if cur, ok, err := r.h.Store().Current(rec.System); err == nil && ok {
		rec.Version = cur.Version + 1
	} else {
		rec.Version = 1
	}
	return r.h.Store().Commit(rec)
}

// registerTransport routes the host endpoint's traffic into the
// composite's promoted boundary services, through the endpoint's group
// mux so several replica groups can share one endpoint.
func (r *Replica) registerTransport() {
	joinMux(r.h.Endpoint(), r)
}

// serveRequest handles one client request dispatched to this replica.
func (r *Replica) serveRequest(ctx context.Context, req *rpc.Request) (resp rpc.Response) {
	// A panic anywhere in the pipeline is an incident: persist the
	// flight-recorder window (the last moments before the crash) and
	// degrade to an unavailability reply instead of taking down the
	// whole process.
	defer func() {
		if rec := recover(); rec != nil {
			telemetry.DumpBlackBox("panic",
				"panic", fmt.Sprint(rec), "req", req.ID(), "host", r.h.Name())
			resp = rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
				Status: rpc.StatusUnavailable, Err: fmt.Sprintf("ftm: panic: %v", rec)}
		}
	}()
	if r.shardRequests != nil {
		r.shardRequests.Inc()
	}
	svc, err := r.boundary(SvcRequest)
	if err != nil {
		return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
			Status: rpc.StatusUnavailable, Err: err.Error()}
	}
	// The carrier crosses the component boundary by pointer: one
	// pooled object carries the request in and the response out,
	// where boxing a Request and a Response into interface payloads
	// allocated twice per request.
	car := getReqCarrier()
	car.Req = *req
	reply, err := svc.Invoke(ctx, component.Message{Op: "request", Payload: car})
	if err != nil {
		putReqCarrier(car)
		return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
			Status: rpc.StatusUnavailable, Err: err.Error()}
	}
	if rc, ok := reply.Payload.(*reqCarrier); ok && rc == car {
		resp = car.Resp
		putReqCarrier(car)
		return resp
	}
	putReqCarrier(car)
	return rpc.Response{ClientID: req.ClientID, Seq: req.Seq,
		Status: rpc.StatusUnavailable, Err: "ftm: bad reply payload"}
}

// serveReplica handles one decoded inter-replica message dispatched to
// this replica.
func (r *Replica) serveReplica(ctx context.Context, env *replicaEnvelope) (data []byte, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			telemetry.DumpBlackBox("panic",
				"panic", fmt.Sprint(rec), "host", r.h.Name())
			data, err = nil, fmt.Errorf("ftm: panic: %v", rec)
		}
	}()
	svc, err := r.boundary(SvcReplica)
	if err != nil {
		return nil, err
	}
	if r.shardReplicaMsgs != nil {
		r.shardReplicaMsgs.Inc()
	}
	msg := component.Message{Op: env.Kind, Payload: env.Payload}
	// The slave-side apply span: parented on the master's ship span
	// (carried by the envelope trailer), it covers decode-to-reply of
	// one inter-replica message, and its context rides the component
	// message so the protocol's brick work nests under it.
	sp := telemetry.DefaultSpans().Start(env.Trace, "ftm.replica.apply")
	if sp != nil {
		sp.SetAttr("kind", env.Kind)
		sp.SetAttr("from", env.From)
		msg = msg.WithMeta(MetaTrace, sp.Context().String())
		defer sp.End()
	}
	reply, err := svc.Invoke(ctx, msg)
	if err != nil {
		sp.SetAttr("outcome", "error")
		return nil, err
	}
	data, _ = reply.Payload.([]byte)
	return data, nil
}

// boundary resolves a promoted boundary service of the FTM composite,
// caching the resolved endpoint so the per-request path skips the
// path walk. Safe because the endpoint re-resolves the promotion and
// enters the composite gate on every invocation.
func (r *Replica) boundary(service string) (component.Service, error) {
	rt := r.h.Runtime()
	if rt == nil {
		return nil, host.ErrCrashed
	}
	r.boundaryMu.RLock()
	svc, ok := r.boundarySvc[service]
	hit := ok && r.boundaryRT == rt
	r.boundaryMu.RUnlock()
	if hit {
		return svc, nil
	}
	cp, err := rt.LookupComposite(r.path)
	if err != nil {
		return nil, err
	}
	svc, err = cp.ServiceEndpoint(service)
	if err != nil {
		return nil, err
	}
	r.boundaryMu.Lock()
	if r.boundaryRT != rt {
		r.boundarySvc = make(map[string]component.Service)
		r.boundaryRT = rt
	}
	r.boundarySvc[service] = svc
	r.boundaryMu.Unlock()
	return svc, nil
}

// AttachMetrics installs an invocation-metrics interceptor on the
// replica's server component and returns the collector — the
// membrane-level load observation the Monitoring Engine's R probes feed
// on. Attaching twice returns an error from the duplicate interceptor.
func (r *Replica) AttachMetrics() (*component.InvocationMetrics, error) {
	rt := r.h.Runtime()
	if rt == nil {
		return nil, host.ErrCrashed
	}
	server, err := rt.Lookup(r.path + "/" + NameServer)
	if err != nil {
		return nil, err
	}
	metrics := component.NewInvocationMetrics()
	if err := server.AddInterceptor(metrics.Interceptor("metrics")); err != nil {
		return nil, err
	}
	return metrics, nil
}

// CurrentScheme reads the live variable-feature composition from the
// architecture (introspection, not bookkeeping).
func (r *Replica) CurrentScheme() (core.Scheme, error) {
	rt := r.h.Runtime()
	if rt == nil {
		return core.Scheme{}, host.ErrCrashed
	}
	var scheme core.Scheme
	for slot, dst := range map[string]*string{
		core.SlotBefore:  &scheme.Before,
		core.SlotProceed: &scheme.Proceed,
		core.SlotAfter:   &scheme.After,
	} {
		c, err := rt.Lookup(r.path + "/" + slot)
		if err != nil {
			return core.Scheme{}, err
		}
		*dst = c.Type()
	}
	return scheme, nil
}

// --- Control callbacks ---------------------------------------------------

// OnPeerChange reacts to failure-detector transitions: a slave promotes
// itself when the master goes silent (the duplex recovery action). In a
// multi-replica group backups promote with rank-staggered delays so that
// exactly one survivor takes over.
func (r *Replica) OnPeerChange(suspected bool) {
	if suspected {
		mPeerSuspected.Inc()
		// Snapshot the pre-incident window now, before failover churn
		// overwrites it: this black box is what a post-mortem reads to see
		// the moments leading up to the suspicion.
		telemetry.DumpBlackBox("peer-suspected", "host", r.h.Name(), "system", r.System())
	} else {
		mPeerRestored.Inc()
	}
	r.mu.Lock()
	role := r.cfg.Role
	multi := len(r.cfg.Members) > 2
	r.mu.Unlock()
	if suspected && role == core.RoleSlave {
		if multi {
			r.event("master suspected: entering staggered takeover")
			go r.considerPromotion()
			return
		}
		r.event("peer suspected: promoting")
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := r.Promote(ctx); err != nil {
				r.event(fmt.Sprintf("promotion failed: %v", err))
			}
		}()
		return
	}
	if suspected {
		r.event("peer suspected: continuing master-alone")
		return
	}
	r.event("peer restored")
	if role == core.RoleMaster {
		// The restored peer may also believe it is master (a spurious
		// promotion during a heartbeat hiccup): resolve the split brain.
		go r.resolveSplitBrain()
	}
}

// rank returns this replica's position in the static membership order
// (0 = initial master), or -1 outside a multi-replica group.
func (r *Replica) rank() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, m := range r.cfg.Members {
		if m == r.h.Addr() {
			return i
		}
	}
	return -1
}

// members returns the static membership.
func (r *Replica) members() []transport.Address {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]transport.Address(nil), r.cfg.Members...)
}

// considerPromotion is the multi-replica takeover protocol: wait a delay
// proportional to this backup's rank, then promote only if no other
// member already answers as master; otherwise re-point to the new master
// and stay a backup.
func (r *Replica) considerPromotion() {
	r.mu.Lock()
	stagger := r.cfg.SuspectTimeout
	r.mu.Unlock()
	if stagger <= 0 {
		stagger = 80 * time.Millisecond
	}
	rank := r.rank()
	if rank > 1 {
		time.Sleep(time.Duration(rank-1) * stagger)
	}
	if r.Role() != core.RoleSlave || r.h.Crashed() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if master := r.findLiveMaster(ctx); master != "" {
		r.event(fmt.Sprintf("takeover already handled by %s: re-pointing", master))
		if err := r.repointTo(master); err != nil {
			r.event(fmt.Sprintf("re-pointing failed: %v", err))
		}
		return
	}
	// Re-point the bridge at the other members BEFORE the role flips: a
	// slave never ships, so the early rewiring is inert until promotion
	// completes, and the first post-promotion wave broadcasts to the
	// survivors. Rewiring after Promote leaves a window where the new
	// master ships only to the dead old master, resolves the wave
	// "degraded", and releases replies no surviving replica has — a
	// second crash in that window loses acknowledged writes.
	if err := r.adoptGroupPeers(); err != nil {
		r.event(fmt.Sprintf("group peer reconfiguration failed: %v", err))
		return
	}
	if err := r.Promote(ctx); err != nil {
		r.event(fmt.Sprintf("promotion failed: %v", err))
		return
	}
	// The new master stops watching the dead member.
	if err := r.adoptGroupMastership(); err != nil {
		r.event(fmt.Sprintf("group mastership reconfiguration failed: %v", err))
	}
}

// findLiveMaster role-queries every other member and returns the first
// one answering as master.
func (r *Replica) findLiveMaster(ctx context.Context) transport.Address {
	self := r.h.Addr()
	for _, m := range r.members() {
		if m == self {
			continue
		}
		env := replicaEnvelope{Kind: MsgRoleQuery, From: string(self), System: r.System(), Group: r.Group()}
		data, err := transport.Encode(env)
		if err != nil {
			return ""
		}
		callCtx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
		reply, err := r.h.Endpoint().Call(callCtx, m, KindReplica, data)
		cancel()
		if err != nil {
			continue
		}
		var info roleInfo
		if err := transport.Decode(reply, &info); err != nil {
			continue
		}
		if core.Role(info.Role) == core.RoleMaster {
			return m
		}
	}
	return ""
}

// repointTo aims this backup's peer bridge and failure detector at the
// new master.
func (r *Replica) repointTo(master transport.Address) error {
	rt := r.h.Runtime()
	if rt == nil {
		return host.ErrCrashed
	}
	if err := rt.SetProperty(r.path+"/"+NamePeer, "peers", []string{string(master)}); err != nil {
		return err
	}
	return rt.SetProperty(r.path+"/"+NameDetector, "peer", string(master))
}

// SetClockSkew shifts this replica's failure-detection clock by d — the
// chaos engine's clock-skew fault. Positive skew makes the peer's
// silence look longer than it is, which is how an unsynchronized clock
// manufactures false suspicion. FTMs without a detector ignore it.
func (r *Replica) SetClockSkew(d time.Duration) error {
	rt := r.h.Runtime()
	if rt == nil {
		return host.ErrCrashed
	}
	return rt.SetProperty(r.path+"/"+NameDetector, "clock-skew", d)
}

// otherMembers lists every member but this replica, in rank order.
func (r *Replica) otherMembers() []string {
	self := r.h.Addr()
	var others []string
	for _, m := range r.members() {
		if m != self {
			others = append(others, string(m))
		}
	}
	return others
}

// adoptGroupPeers aims the peer bridge at every other member. Called on
// a still-slave replica about to promote (see considerPromotion for why
// the ordering matters); the dead master stays in the broadcast set so
// it resynchronizes if it restarts — the broadcast is best-effort.
func (r *Replica) adoptGroupPeers() error {
	rt := r.h.Runtime()
	if rt == nil {
		return host.ErrCrashed
	}
	return rt.SetProperty(r.path+"/"+NamePeer, "peers", r.otherMembers())
}

// adoptGroupMastership reconfigures a freshly promoted group master:
// broadcast to every other member, watch the highest-ranked other
// member.
func (r *Replica) adoptGroupMastership() error {
	rt := r.h.Runtime()
	if rt == nil {
		return host.ErrCrashed
	}
	others := r.otherMembers()
	if err := rt.SetProperty(r.path+"/"+NamePeer, "peers", others); err != nil {
		return err
	}
	watch := ""
	if len(others) > 0 {
		watch = others[len(others)-1] // the deepest backup is likeliest alive
	}
	return rt.SetProperty(r.path+"/"+NameDetector, "peer", watch)
}

// resolveSplitBrain queries the peer's role; when both replicas are
// master, the younger mastership (ties broken by host name) demotes
// itself back to slave.
func (r *Replica) resolveSplitBrain() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	r.mu.Lock()
	peer := r.cfg.Peer
	mySince := r.masterSince
	r.mu.Unlock()
	if peer == "" {
		return
	}
	env := replicaEnvelope{Kind: MsgRoleQuery, From: string(r.h.Addr()), System: r.System(), Group: r.Group()}
	data, err := transport.Encode(env)
	if err != nil {
		return
	}
	reply, err := r.h.Endpoint().Call(ctx, peer, KindReplica, data)
	if err != nil {
		return // peer unreachable again; the detector owns that case
	}
	var info roleInfo
	if err := transport.Decode(reply, &info); err != nil {
		return
	}
	if core.Role(info.Role) != core.RoleMaster || r.Role() != core.RoleMaster {
		return
	}
	peerSince := time.Unix(0, info.MasterSinceNano)
	yieldToPeer := peerSince.Before(mySince) ||
		(peerSince.Equal(mySince) && string(peer) < r.h.Name())
	if !yieldToPeer {
		return
	}
	r.event("split brain detected: demoting (younger mastership)")
	// Demote only the mastership this verdict judged: the resolver runs
	// asynchronously and may lose the reconfiguration lock to a
	// crash-driven re-promotion — deposing that newer, legitimate
	// master on a stale verdict would leave the pair masterless.
	if err := r.demoteIf(ctx, mySince); err != nil {
		r.event(fmt.Sprintf("demotion failed: %v", err))
	}
	// The role reply is out-of-band proof the peer is alive, but the
	// watchdog may still be holding an unrecovered suspicion of it (a
	// partition that healed faster than a heartbeat round). Every
	// recovery path downstream of the detector is edge-triggered, so a
	// slave whose detector is stuck suspected would never promote when
	// the peer later really dies — re-arm the verdict now that liveness
	// is proven.
	if rt := r.h.Runtime(); rt != nil {
		_ = rt.SetProperty(r.path+"/"+NameDetector, "reset", string(peer))
	}
}

// Demote switches a master back to slave through the same differential
// machinery as Promote, then resynchronizes from the surviving master
// when the mechanism supports state transfer.
func (r *Replica) Demote(ctx context.Context) error {
	return r.demoteIf(ctx, time.Time{})
}

// demoteIf demotes the replica when since is zero or still names the
// current mastership epoch. masterSince only changes under a completed
// Promote, so a caller that snapshots it and passes it here can never
// demote a mastership minted after its decision.
func (r *Replica) demoteIf(ctx context.Context, since time.Time) error {
	unlock := r.LockReconfig()
	defer unlock()
	r.mu.Lock()
	if r.cfg.Role != core.RoleMaster || (!since.IsZero() && !r.masterSince.Equal(since)) {
		r.mu.Unlock()
		return nil
	}
	ftmID := r.cfg.FTM
	r.mu.Unlock()

	rt := r.h.Runtime()
	if rt == nil {
		return host.ErrCrashed
	}
	desc, err := core.Lookup(ftmID)
	if err != nil {
		return err
	}
	script, env, err := TransitionScript(r.path,
		desc.Scheme(core.RoleMaster), desc.Scheme(core.RoleSlave),
		RoleChangeStmt(r.path, core.RoleSlave))
	if err != nil {
		return err
	}
	if err := rt.Stop(ctx, r.path); err != nil {
		return err
	}
	if _, err := fscript.Execute(ctx, rt, script, env); err != nil {
		var serr *fscript.ScriptError
		if errors.As(err, &serr) && serr.RollbackErr != nil {
			r.event("demotion rollback failed: killing replica")
			r.h.Crash()
			return err
		}
		_ = rt.Start(ctx, r.path)
		return err
	}
	if err := rt.Start(ctx, r.path); err != nil {
		return err
	}
	r.mu.Lock()
	r.cfg.Role = core.RoleSlave
	r.mu.Unlock()
	mDemotions.Inc()
	r.event("demoted to slave")
	telemetry.DumpBlackBox("demoted", "host", r.h.Name(), "system", r.System())
	// Resynchronize unconditionally: the checkpoint pull rides the
	// protocol's fixed state and reply-log features, available under
	// every mechanism, and a demoted ex-master may hold divergent state
	// from its spurious mastership however the system replicates.
	if err := r.SyncFromPeer(ctx); err != nil {
		r.event(fmt.Sprintf("post-demotion sync failed: %v", err))
	}
	return nil
}

// OnAssertionPermanent makes the replica fall silent: its host computes
// wrong values persistently (permanent value fault), so the safe move is
// to crash and let the peer take over.
func (r *Replica) OnAssertionPermanent() {
	r.event("persistent assertion failures: failing silent")
	go func() {
		// Let the in-flight reply drain before the endpoint closes.
		time.Sleep(10 * time.Millisecond)
		r.h.Crash()
	}()
}

// --- Failover -------------------------------------------------------------

// Promote switches a slave to master through a differential intra-FTM
// reconfiguration: only the variable features whose master-role bricks
// differ are swapped; requests buffered at the composite boundary during
// the swap replay in the new configuration. A script failure applies the
// fail-silent policy (§5.3): the replica kills its host.
func (r *Replica) Promote(ctx context.Context) error {
	unlock := r.LockReconfig()
	defer unlock()
	r.mu.Lock()
	if r.cfg.Role == core.RoleMaster || r.promoting {
		r.mu.Unlock()
		return nil
	}
	r.promoting = true
	ftmID := r.cfg.FTM
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.promoting = false
		r.mu.Unlock()
	}()

	rt := r.h.Runtime()
	if rt == nil {
		return host.ErrCrashed
	}
	desc, err := core.Lookup(ftmID)
	if err != nil {
		return err
	}
	script, env, err := TransitionScript(r.path,
		desc.Scheme(core.RoleSlave), desc.Scheme(core.RoleMaster),
		RoleChangeStmt(r.path, core.RoleMaster))
	if err != nil {
		return err
	}

	if err := rt.Stop(ctx, r.path); err != nil {
		return err
	}
	if _, err := fscript.Execute(ctx, rt, script, env); err != nil {
		var serr *fscript.ScriptError
		if errors.As(err, &serr) && serr.RollbackErr != nil {
			// The architecture is inconsistent: enforce fail-silence.
			r.event("promotion rollback failed: killing replica")
			r.h.Crash()
			return err
		}
		_ = rt.Start(ctx, r.path) // rollback succeeded; reopen as slave
		return err
	}
	if err := rt.Start(ctx, r.path); err != nil {
		return err
	}
	r.mu.Lock()
	r.cfg.Role = core.RoleMaster
	r.masterSince = time.Now()
	r.mu.Unlock()
	mPromotions.Inc()
	r.event("promoted to master")
	telemetry.DumpBlackBox("promoted", "host", r.h.Name(), "system", r.System())
	// Proactively check for a live senior master: a promotion driven by
	// a false suspicion — an asymmetric partition or a skewed detector
	// clock silences the master in one direction only — creates a split
	// brain that used to persist until a heal re-fired the peer-restored
	// edge at the old master. Querying the peer right now bounds that
	// window to one round trip. Asynchronous because resolution may
	// demote, and the reconfiguration lock is still held here.
	go r.resolveSplitBrain()
	return nil
}

// SyncFromPeer pulls a full checkpoint from the live master and applies
// it — the state transfer a rejoining slave performs. It requires a
// checkpoint-capable configuration on both sides (state access on the
// master, a checkpoint-applying After locally or direct state/log
// access).
func (r *Replica) SyncFromPeer(ctx context.Context) error {
	rt := r.h.Runtime()
	if rt == nil {
		return host.ErrCrashed
	}
	peerComp, err := rt.Lookup(r.path + "/" + NamePeer)
	if err != nil {
		return fmt.Errorf("ftm: sync without a peer bridge: %w", err)
	}
	svc, err := peerComp.ServiceEndpoint(SvcSend)
	if err != nil {
		return err
	}
	data, err := (peerClient{svc: svc}).call(ctx, MsgPBRPull, nil)
	if err != nil {
		return fmt.Errorf("ftm: checkpoint pull: %w", err)
	}
	// Apply directly through the server and reply log services.
	server, err := rt.Lookup(r.path + "/" + NameServer)
	if err != nil {
		return err
	}
	stateSvc, err := server.ServiceEndpoint(SvcState)
	if err != nil {
		return err
	}
	logComp, err := rt.Lookup(r.path + "/" + NameReplyLog)
	if err != nil {
		return err
	}
	logSvc, err := logComp.ServiceEndpoint(SvcLog)
	if err != nil {
		return err
	}
	return applyCheckpoint(ctx, stateClient{svc: stateSvc}, logClient{svc: logSvc}, data)
}

// Kill crashes the replica's host (fail-silent).
func (r *Replica) Kill() {
	mKills.Inc()
	r.event("killed")
	r.h.Crash()
}
