package ftm

import (
	"fmt"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/faultinject"
	"resilientft/internal/host"
	"resilientft/internal/transport"
)

// Component names inside an FTM composite (Figure 6).
const (
	NameProtocol = "protocol"
	NameReplyLog = "replyLog"
	NameServer   = "server"
	NamePeer     = "peer"
	NameDetector = "detector"
	// The variable-feature slots carry the slot names of the generic
	// scheme: core.SlotBefore, core.SlotProceed, core.SlotAfter.
)

// bundleSizes models each component type's deployable size; bundle
// verification and linking at these sizes is the deployment cost of
// transition packages (cf. FraSCAti's OSGi bundles).
var bundleSizes = map[string]int{
	TypeProtocol:            96 * 1024,
	TypeServer:              64 * 1024,
	TypeReplyLog:            24 * 1024,
	TypePeer:                32 * 1024,
	TypeDetector:            40 * 1024,
	core.TypeNop:            8 * 1024,
	core.TypeComputeProceed: 16 * 1024,
	core.TypeNoProceed:      8 * 1024,
	core.TypeTRProceed:      56 * 1024,
	core.TypeAssertProceed:  40 * 1024,
	core.TypePBRCheckpoint:  48 * 1024,
	core.TypePBRApply:       40 * 1024,
	core.TypeLFRForward:     32 * 1024,
	core.TypeLFRReceive:     32 * 1024,
	core.TypeLFRNotify:      32 * 1024,
	core.TypeLFRAck:         32 * 1024,
	core.TypeTRCapture:      24 * 1024,
	core.TypeTRRestore:      24 * 1024,
	core.TypeRBProceed:      64 * 1024,
	core.TypeTMRProceed:     56 * 1024,
	core.TypeRecordProceed:  24 * 1024,
	core.TypeXPANotify:      32 * 1024,
	core.TypeXPAApply:       32 * 1024,
}

// BundleFor returns the sealed deployment bundle of a component type.
func BundleFor(typ string) component.Bundle {
	size, ok := bundleSizes[typ]
	if !ok {
		size = 16 * 1024
	}
	switch typ {
	case TypeProtocol, TypeServer, TypeReplyLog, TypePeer, TypeDetector:
		return component.NewBundle(typ, size)
	default:
		// Bricks link against the protocol's interfaces.
		return component.NewBundle(typ, size, TypeProtocol)
	}
}

// BrickTypes lists every variable-feature component type.
func BrickTypes() []string {
	return []string{
		core.TypeNop,
		core.TypeComputeProceed,
		core.TypeNoProceed,
		core.TypeTRProceed,
		core.TypeAssertProceed,
		core.TypePBRCheckpoint,
		core.TypePBRApply,
		core.TypeLFRForward,
		core.TypeLFRReceive,
		core.TypeLFRNotify,
		core.TypeLFRAck,
		core.TypeTRCapture,
		core.TypeTRRestore,
		core.TypeRBProceed,
		core.TypeTMRProceed,
		core.TypeRecordProceed,
		core.TypeXPANotify,
		core.TypeXPAApply,
	}
}

// propAs fetches a typed property, failing with a diagnosable error.
func propAs[T any](props map[string]any, name string) (T, error) {
	var zero T
	v, ok := props[name]
	if !ok {
		return zero, fmt.Errorf("ftm: missing property %q", name)
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("ftm: property %q is %T", name, v)
	}
	return t, nil
}

// RegisterAll installs factories for every FTM component type into a
// component registry — the "class space" a replica must resolve
// transition-package bundles against.
func RegisterAll(reg *component.Registry) error {
	factories := map[string]component.Factory{
		TypeProtocol: func(props map[string]any) (component.Content, error) {
			system, _ := props["system"].(string)
			return newProtocolContent(system), nil
		},
		TypeReplyLog: func(props map[string]any) (component.Content, error) {
			retention, ok := props["retention"].(int)
			if !ok {
				retention = 64
			}
			return newReplyLogContent(retention), nil
		},
		TypeServer: func(props map[string]any) (component.Content, error) {
			app, err := propAs[Application](props, "app")
			if err != nil {
				return nil, err
			}
			return newServerContent(app), nil
		},
		TypePeer: func(props map[string]any) (component.Content, error) {
			ep, err := propAs[transport.Endpoint](props, "endpoint")
			if err != nil {
				return nil, err
			}
			peer, _ := props["peer"].(string)
			system, _ := props["system"].(string)
			group, _ := props["group"].(string)
			return newPeerContent(ep, transport.Address(peer), system, group), nil
		},
		TypeDetector: func(props map[string]any) (component.Content, error) {
			ep, err := propAs[transport.Endpoint](props, "endpoint")
			if err != nil {
				return nil, err
			}
			peer, _ := props["peer"].(string)
			crash, _ := props["crash"].(*faultinject.CrashSwitch)
			interval, _ := props["interval"].(time.Duration)
			timeout, _ := props["timeout"].(time.Duration)
			health, _ := props["health"].(*host.HealthMonitor)
			return newDetectorContent(ep, transport.Address(peer), crash, interval, timeout, health), nil
		},
	}
	for typ, f := range factories {
		if err := reg.Register(typ, f); err != nil {
			return err
		}
	}
	for _, typ := range BrickTypes() {
		brickType := typ
		err := reg.Register(brickType, func(map[string]any) (component.Content, error) {
			return newBrickContent(brickType)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// NewRegistry returns a component registry with every FTM type installed.
func NewRegistry() *component.Registry {
	reg := component.NewRegistry()
	if err := RegisterAll(reg); err != nil {
		panic(err) // duplicate registration is a programming error
	}
	return reg
}

// infraDefinition returns the Definition template of a non-brick FTM
// component type.
func infraDefinition(typ string) (component.Definition, error) {
	def := component.Definition{Type: typ, Bundle: BundleFor(typ)}
	switch typ {
	case TypeProtocol:
		def.Name = NameProtocol
		def.Services = []string{SvcRequest, SvcReplica, SvcControl}
		def.References = []component.Ref{
			{Name: "before", Required: true},
			{Name: "proceed", Required: true},
			{Name: "after", Required: true},
			{Name: "log", Required: true},
			{Name: "peer"},
			{Name: "state"},
			{Name: "server"},
			{Name: "assert"},
		}
	case TypeReplyLog:
		def.Name = NameReplyLog
		def.Services = []string{SvcLog}
	case TypeServer:
		def.Name = NameServer
		def.Services = []string{SvcProcess, SvcState, SvcAssert, SvcAlternate, SvcRecord, SvcReplay}
	case TypePeer:
		def.Name = NamePeer
		def.Services = []string{SvcSend}
	case TypeDetector:
		def.Name = NameDetector
		def.Services = []string{"status"}
		def.References = []component.Ref{{Name: "protocol", Required: true}}
	default:
		return component.Definition{}, fmt.Errorf("ftm: unknown infrastructure type %q", typ)
	}
	return def, nil
}

// refTarget maps a reference name to (component name, service name)
// inside the composite — the static wiring plan of Figure 6.
var refTarget = map[string][2]string{
	"server":    {NameServer, SvcProcess},
	"state":     {NameServer, SvcState},
	"assert":    {NameServer, SvcAssert},
	"alternate": {NameServer, SvcAlternate},
	"record":    {NameServer, SvcRecord},
	"replay":    {NameServer, SvcReplay},
	"log":       {NameReplyLog, SvcLog},
	"peer":      {NamePeer, SvcSend},
	"before":    {core.SlotBefore, SvcSync},
	"proceed":   {core.SlotProceed, SvcExec},
	"after":     {core.SlotAfter, SvcSync},
	"protocol":  {NameProtocol, SvcControl},
}

// SlotService returns the service a pipeline slot exposes.
func SlotService(slot string) string {
	if slot == core.SlotProceed {
		return SvcExec
	}
	return SvcSync
}
