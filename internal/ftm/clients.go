package ftm

import (
	"context"
	"fmt"

	"resilientft/internal/component"
)

// The typed facades below wrap the uniform component services so brick
// and protocol code reads like the protocol it implements. Each facade
// holds the injected wire proxy; a nil proxy reports the unwired
// reference.

// brickClient drives a pipeline slot (syncBefore/proceed/syncAfter).
type brickClient struct {
	svc component.Service
}

func (b brickClient) run(ctx context.Context, call *Call) error {
	if b.svc == nil {
		return component.ErrRefUnwired
	}
	_, err := b.svc.Invoke(ctx, component.Message{Op: OpRun, Payload: call})
	return err
}

// processClient drives the server's computation service.
type processClient struct {
	svc component.Service
}

func (p processClient) run(ctx context.Context, call *Call) error {
	if p.svc == nil {
		return component.ErrRefUnwired
	}
	_, err := p.svc.Invoke(ctx, component.Message{Op: OpRun, Payload: call})
	return err
}

// stateClient drives the server's state service.
type stateClient struct {
	svc component.Service
}

func (s stateClient) capture(ctx context.Context) ([]byte, error) {
	if s.svc == nil {
		return nil, component.ErrRefUnwired
	}
	reply, err := s.svc.Invoke(ctx, component.Message{Op: OpCapture})
	if err != nil {
		return nil, err
	}
	data, ok := reply.Payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("ftm: capture reply is %T", reply.Payload)
	}
	return data, nil
}

func (s stateClient) restore(ctx context.Context, data []byte) error {
	if s.svc == nil {
		return component.ErrRefUnwired
	}
	_, err := s.svc.Invoke(ctx, component.Message{Op: OpRestoreState, Payload: data})
	return err
}

// assertClient drives the server's assertion service.
type assertClient struct {
	svc component.Service
}

func (a assertClient) check(ctx context.Context, call *Call) (bool, error) {
	if a.svc == nil {
		return false, component.ErrRefUnwired
	}
	reply, err := a.svc.Invoke(ctx, component.Message{Op: OpRun, Payload: call})
	if err != nil {
		return false, err
	}
	ok, _ := reply.Payload.(bool)
	return ok, nil
}

// peerClient drives the inter-replica bridge.
type peerClient struct {
	svc component.Service
}

func (p peerClient) call(ctx context.Context, kind string, payload []byte) ([]byte, error) {
	if p.svc == nil {
		return nil, component.ErrRefUnwired
	}
	msg := component.Message{Op: OpCall, Payload: payload}
	msg = msg.WithMeta(MetaKind, kind)
	reply, err := p.svc.Invoke(ctx, msg)
	if err != nil {
		return nil, err
	}
	data, _ := reply.Payload.([]byte)
	return data, nil
}
