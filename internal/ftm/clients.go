package ftm

import (
	"context"
	"fmt"

	"resilientft/internal/component"
	"resilientft/internal/telemetry"
)

// The typed facades below wrap the uniform component services so brick
// and protocol code reads like the protocol it implements. Each facade
// holds the injected wire proxy; a nil proxy reports the unwired
// reference.

// brickClient drives a pipeline slot (syncBefore/proceed/syncAfter).
type brickClient struct {
	svc component.Service
}

func (b brickClient) run(ctx context.Context, call *Call) error {
	if b.svc == nil {
		return component.ErrRefUnwired
	}
	_, err := b.svc.Invoke(ctx, component.Message{Op: OpRun, Payload: call})
	return err
}

// processClient drives the server's computation service.
type processClient struct {
	svc component.Service
}

func (p processClient) run(ctx context.Context, call *Call) error {
	if p.svc == nil {
		return component.ErrRefUnwired
	}
	_, err := p.svc.Invoke(ctx, component.Message{Op: OpRun, Payload: call})
	return err
}

// stateClient drives the server's state service.
type stateClient struct {
	svc component.Service
}

func (s stateClient) capture(ctx context.Context) ([]byte, error) {
	if s.svc == nil {
		return nil, component.ErrRefUnwired
	}
	reply, err := s.svc.Invoke(ctx, component.Message{Op: OpCapture})
	if err != nil {
		return nil, err
	}
	data, ok := reply.Payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("ftm: capture reply is %T", reply.Payload)
	}
	return data, nil
}

func (s stateClient) restore(ctx context.Context, data []byte) error {
	if s.svc == nil {
		return component.ErrRefUnwired
	}
	_, err := s.svc.Invoke(ctx, component.Message{Op: OpRestoreState, Payload: data})
	return err
}

func (s stateClient) captureVersioned(ctx context.Context) ([]byte, uint64, error) {
	if s.svc == nil {
		return nil, 0, component.ErrRefUnwired
	}
	reply, err := s.svc.Invoke(ctx, component.Message{Op: OpCaptureVersioned})
	if err != nil {
		return nil, 0, err
	}
	vc, ok := reply.Payload.(versionedCapture)
	if !ok {
		return nil, 0, fmt.Errorf("ftm: capture-versioned reply is %T", reply.Payload)
	}
	return vc.Data, vc.Version, nil
}

func (s stateClient) captureDelta(ctx context.Context, base uint64) (deltaCaptureResult, error) {
	if s.svc == nil {
		return deltaCaptureResult{}, component.ErrRefUnwired
	}
	reply, err := s.svc.Invoke(ctx, component.Message{Op: OpCaptureDelta, Payload: base})
	if err != nil {
		return deltaCaptureResult{}, err
	}
	res, ok := reply.Payload.(deltaCaptureResult)
	if !ok {
		return deltaCaptureResult{}, fmt.Errorf("ftm: capture-delta reply is %T", reply.Payload)
	}
	return res, nil
}

func (s stateClient) applyDelta(ctx context.Context, delta []byte) (deltaApplyResult, error) {
	if s.svc == nil {
		return deltaApplyResult{}, component.ErrRefUnwired
	}
	reply, err := s.svc.Invoke(ctx, component.Message{Op: OpApplyDelta, Payload: delta})
	if err != nil {
		return deltaApplyResult{}, err
	}
	res, ok := reply.Payload.(deltaApplyResult)
	if !ok {
		return deltaApplyResult{}, fmt.Errorf("ftm: apply-delta reply is %T", reply.Payload)
	}
	return res, nil
}

func (s stateClient) applyFull(ctx context.Context, data []byte, version uint64) error {
	if s.svc == nil {
		return component.ErrRefUnwired
	}
	_, err := s.svc.Invoke(ctx, component.Message{Op: OpApplyFull, Payload: versionedCapture{Data: data, Version: version}})
	return err
}

// assertClient drives the server's assertion service.
type assertClient struct {
	svc component.Service
}

func (a assertClient) check(ctx context.Context, call *Call) (bool, error) {
	if a.svc == nil {
		return false, component.ErrRefUnwired
	}
	reply, err := a.svc.Invoke(ctx, component.Message{Op: OpRun, Payload: call})
	if err != nil {
		return false, err
	}
	ok, _ := reply.Payload.(bool)
	return ok, nil
}

// peerClient drives the inter-replica bridge.
type peerClient struct {
	svc component.Service
}

func (p peerClient) call(ctx context.Context, kind string, payload []byte) ([]byte, error) {
	return p.callTraced(ctx, kind, payload, telemetry.SpanContext{})
}

// callTraced is call with a span context that rides the send as message
// metadata; the bridge records the ship span under it and forwards it
// in the wire envelope so the remote apply links to the same trace.
func (p peerClient) callTraced(ctx context.Context, kind string, payload []byte, trace telemetry.SpanContext) ([]byte, error) {
	if p.svc == nil {
		return nil, component.ErrRefUnwired
	}
	// The kind travels as the message Op — the common unsampled send
	// carries no metadata map at all.
	msg := component.Message{Op: kind, Payload: payload}
	if trace.Valid() {
		msg = msg.WithMeta(MetaTrace, trace.String())
	}
	reply, err := p.svc.Invoke(ctx, msg)
	if err != nil {
		return nil, err
	}
	data, _ := reply.Payload.([]byte)
	return data, nil
}
