package ftm

import (
	"context"
	"strings"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/host"
	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

// fastConfig returns a system config with aggressive failover timing for
// tests.
func fastConfig(ftmID core.ID) SystemConfig {
	return SystemConfig{
		System:            "calc",
		FTM:               ftmID,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
	}
}

func newTestSystem(t *testing.T, ftmID core.ID) *System {
	t.Helper()
	s, err := NewSystem(context.Background(), fastConfig(ftmID))
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", ftmID, err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func invoke(t *testing.T, c *rpc.Client, op string, arg int64) int64 {
	t.Helper()
	resp, err := c.Invoke(context.Background(), op, EncodeArg(arg))
	if err != nil {
		t.Fatalf("Invoke(%s, %d): %v", op, arg, err)
	}
	v, err := DecodeResult(resp.Payload)
	if err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return v
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestPBRServesRequests(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	if got := invoke(t, c, "set:x", 10); got != 10 {
		t.Fatalf("set = %d", got)
	}
	if got := invoke(t, c, "add:x", 5); got != 15 {
		t.Fatalf("add = %d", got)
	}
	if got := invoke(t, c, "get:x", 0); got != 15 {
		t.Fatalf("get = %d", got)
	}
}

func TestPBRCheckpointsReachBackup(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 42)
	// The backup's application state must mirror the primary's after the
	// checkpoint lands.
	slaveApp := s.Slave().App().(*Calculator)
	waitUntil(t, 2*time.Second, func() bool {
		return slaveApp.regs.Get("x") == 42
	}, "backup never received the checkpointed state")
}

func TestPBRSlaveRejectsClients(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	// A client configured to talk to the slave first still succeeds: the
	// slave answers not-master and the client fails over.
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	c.SetReplicas([]transport.Address{s.Slave().Host().Addr(), s.Master().Host().Addr()})
	if got := invoke(t, c, "set:x", 1); got != 1 {
		t.Fatalf("set = %d", got)
	}
	// The slave executed nothing: its state only changes via checkpoints,
	// which do not embed partial executions of their own.
	if s.Slave().Role() != core.RoleSlave {
		t.Fatal("slave unexpectedly promoted")
	}
}

func TestLFRBothReplicasCompute(t *testing.T) {
	s := newTestSystem(t, core.LFR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 7)
	invoke(t, c, "add:x", 3)
	leaderApp := s.Master().App().(*Calculator)
	followerApp := s.Slave().App().(*Calculator)
	if got := leaderApp.regs.Get("x"); got != 10 {
		t.Fatalf("leader state = %d", got)
	}
	// The follower computed the same requests itself (active
	// replication), no checkpoint involved.
	waitUntil(t, 2*time.Second, func() bool {
		return followerApp.regs.Get("x") == 10
	}, "follower never computed the forwarded requests")
}

func TestAtMostOnceAcrossReplicas(t *testing.T) {
	s := newTestSystem(t, core.LFR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "add:x", 5) // x = 5 on both replicas
	// Redeliver the same request identity straight to the follower after
	// promotion: it must replay, not re-execute.
	s.CrashMaster()
	waitUntil(t, 5*time.Second, func() bool { return s.Master() != nil }, "follower never promoted")
	resp, err := c.Invoke(context.Background(), "get:x", EncodeArg(0))
	if err != nil {
		t.Fatalf("post-failover Invoke: %v", err)
	}
	v, _ := DecodeResult(resp.Payload)
	if v != 5 {
		t.Fatalf("x after failover = %d, want 5 (re-execution would have doubled an add)", v)
	}
}

func TestPBRFailoverPreservesState(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 100)
	invoke(t, c, "add:x", 23)

	oldMasterHost := s.Master().Host().Name()
	s.CrashMaster()
	waitUntil(t, 5*time.Second, func() bool {
		m := s.Master()
		return m != nil && m.Host().Name() != oldMasterHost
	}, "backup never promoted after primary crash")

	// The promoted backup serves from the checkpointed state.
	if got := invoke(t, c, "get:x", 0); got != 123 {
		t.Fatalf("state after failover = %d, want 123", got)
	}
	// And continues to make progress.
	if got := invoke(t, c, "add:x", 1); got != 124 {
		t.Fatalf("post-failover add = %d", got)
	}
}

func TestLFRFailoverPreservesState(t *testing.T) {
	s := newTestSystem(t, core.LFR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 50)
	s.CrashMaster()
	waitUntil(t, 5*time.Second, func() bool { return s.Master() != nil }, "follower never promoted")
	if got := invoke(t, c, "get:x", 0); got != 50 {
		t.Fatalf("state after failover = %d, want 50", got)
	}
}

func TestPromotionSwapsBricks(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	slave := s.Slave()
	scheme, err := slave.CurrentScheme()
	if err != nil {
		t.Fatal(err)
	}
	if scheme != core.MustLookup(core.PBR).SlaveScheme {
		t.Fatalf("slave scheme = %+v", scheme)
	}
	s.CrashMaster()
	waitUntil(t, 5*time.Second, func() bool { return s.Master() == slave }, "slave never promoted")
	scheme, err = slave.CurrentScheme()
	if err != nil {
		t.Fatal(err)
	}
	if scheme != core.MustLookup(core.PBR).MasterScheme {
		t.Fatalf("promoted scheme = %+v, want master scheme", scheme)
	}
	// The promotion is recorded in the replica's event log.
	joined := strings.Join(slave.Events(), "; ")
	if !strings.Contains(joined, "promoted to master") {
		t.Fatalf("events = %s", joined)
	}
}

func TestCrashedSlaveMasterContinues(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 9)
	s.CrashSlave()
	// Master keeps serving in degraded (master-alone) mode.
	waitUntil(t, 5*time.Second, func() bool {
		resp, err := c.Invoke(context.Background(), "add:x", EncodeArg(1))
		if err != nil {
			return false
		}
		v, _ := DecodeResult(resp.Payload)
		return v >= 10
	}, "master stopped serving after slave crash")
}

func TestRestartedSlaveResynchronizes(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 77)
	idx := s.CrashSlave()
	if idx < 0 {
		t.Fatal("no slave to crash")
	}
	invoke(t, c, "add:x", 3) // progress while the slave is down

	r, err := s.RestartReplica(context.Background(), idx)
	if err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	app := r.App().(*Calculator)
	waitUntil(t, 2*time.Second, func() bool {
		return app.regs.Get("x") == 80
	}, "rejoined slave never caught up")
	// And failover to the rejoined slave works.
	s.CrashMaster()
	waitUntil(t, 5*time.Second, func() bool { return s.Master() == r }, "rejoined slave never promoted")
	if got := invoke(t, c, "get:x", 0); got != 80 {
		t.Fatalf("state after second failover = %d, want 80", got)
	}
}

func TestStandaloneTRDeployment(t *testing.T) {
	// TR runs on a single host: deploy directly, no peer, no detector.
	net := transport.NewMemNetwork(transport.WithSeed(2))
	h, err := host.New("solo", net, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Crash()
	r, err := NewReplica(context.Background(), h, ReplicaConfig{
		System: "solo",
		FTM:    core.TR,
		Role:   core.RoleMaster,
		App:    NewCalculator(),
	})
	if err != nil {
		t.Fatalf("NewReplica(TR): %v", err)
	}
	if h.Runtime().Exists(r.Path() + "/" + NamePeer) {
		t.Fatal("single-host TR deployed a peer bridge")
	}
	if h.Runtime().Exists(r.Path() + "/" + NameDetector) {
		t.Fatal("single-host TR deployed a failure detector")
	}
	cep, err := net.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	c := rpc.NewClient("c1", cep, []transport.Address{h.Addr()})
	if got := invoke(t, c, "set:x", 5); got != 5 {
		t.Fatalf("set through TR = %d", got)
	}
	if got := invoke(t, c, "add:x", 2); got != 7 {
		t.Fatalf("add through TR = %d", got)
	}
}

func TestFigure6Architecture(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	master := s.Master()
	d, err := master.Host().Runtime().Describe(master.Path())
	if err != nil {
		t.Fatal(err)
	}
	text := d.String()
	// The Figure 6 component set.
	for _, want := range []string{
		"calc/protocol", "calc/replyLog", "calc/server", "calc/peer",
		"calc/detector", "calc/syncBefore", "calc/proceed", "calc/syncAfter",
		"calc/protocol.before -> calc/syncBefore.sync",
		"calc/protocol.proceed -> calc/proceed.exec",
		"calc/protocol.after -> calc/syncAfter.sync",
		"request => protocol.request",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("architecture missing %q:\n%s", want, text)
		}
	}
}

func TestDeployedSchemesMatchCatalogue(t *testing.T) {
	for _, id := range core.DeployableSet() {
		s := newTestSystem(t, id)
		desc := core.MustLookup(id)
		mScheme, err := s.Master().CurrentScheme()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if mScheme != desc.MasterScheme {
			t.Errorf("%s master scheme = %+v, want %+v", id, mScheme, desc.MasterScheme)
		}
		sScheme, err := s.Slave().CurrentScheme()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sScheme != desc.SlaveScheme {
			t.Errorf("%s slave scheme = %+v, want %+v", id, sScheme, desc.SlaveScheme)
		}
		s.Shutdown()
	}
}
