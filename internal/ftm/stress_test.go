package ftm

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
)

// TestConcurrentClientsNoDoubleExecution hammers one system with many
// concurrent clients, each redelivering every request once under its
// original sequence number (the retry a client performs after losing a
// reply). At-most-once must hold under concurrency: the duplicate must
// replay the logged reply, and each client's register must reflect every
// add exactly once. Half the clients run always-traced, so the span
// recorder's lock-free ring takes the same concurrent hammering — and a
// duplicate delivery must land in the original request's trace.
func TestConcurrentClientsNoDoubleExecution(t *testing.T) {
	const (
		clients = 8
		opsEach = 20
	)
	for _, id := range []core.ID{core.PBR, core.LFR} {
		t.Run(string(id), func(t *testing.T) {
			s := newTestSystem(t, id)
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for ci := 0; ci < clients; ci++ {
				var opts []rpc.ClientOption
				if ci%2 == 1 {
					opts = append(opts, rpc.WithAlwaysTrace())
				}
				c, err := s.NewClient(opts...)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(ci int) {
					defer wg.Done()
					ctx := context.Background()
					op := fmt.Sprintf("add:r%d", ci)
					for i := 0; i < opsEach; i++ {
						resp, err := c.Invoke(ctx, op, EncodeArg(1))
						if err != nil {
							errs <- fmt.Errorf("client %d op %d: %v", ci, i, err)
							return
						}
						want, err := DecodeResult(resp.Payload)
						if err != nil {
							errs <- err
							return
						}
						// Duplicate delivery of the same request identity:
						// the reply log must replay, not re-execute.
						dup, err := c.Redeliver(ctx, resp.Seq, op, EncodeArg(1))
						if err != nil {
							errs <- fmt.Errorf("client %d redeliver %d: %v", ci, i, err)
							return
						}
						got, err := DecodeResult(dup.Payload)
						if err != nil {
							errs <- err
							return
						}
						if got != want {
							errs <- fmt.Errorf("client %d seq %d: redelivery returned %d, original %d (re-executed?)",
								ci, resp.Seq, got, want)
							return
						}
						if !dup.Replayed {
							errs <- fmt.Errorf("client %d seq %d: duplicate not flagged as replayed", ci, resp.Seq)
							return
						}
					}
					// Every add executed exactly once.
					final, err := c.Invoke(ctx, fmt.Sprintf("get:r%d", ci), EncodeArg(0))
					if err != nil {
						errs <- err
						return
					}
					v, err := DecodeResult(final.Payload)
					if err != nil {
						errs <- err
						return
					}
					if v != opsEach {
						errs <- fmt.Errorf("client %d register = %d, want %d", ci, v, opsEach)
					}
					if ci%2 == 1 {
						// Deterministic trace ids: the duplicate delivery of
						// seq 1 recorded its client span in the original trace.
						var clientSpans int
						for _, sp := range telemetry.DefaultSpans().ForTrace(telemetry.TraceIDFor(c.ID(), 1)) {
							if sp.Name == "rpc.client" {
								clientSpans++
							}
						}
						if clientSpans < 2 {
							errs <- fmt.Errorf("client %d: duplicate did not join the original trace (rpc.client spans = %d)", ci, clientSpans)
						}
					}
				}(ci)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestDeltaResyncAfterSlaveRestart exercises the delta-checkpoint resync
// protocol end to end: deltas flow, the slave dies and misses writes,
// the restarted slave resynchronizes (full checkpoint), delta shipping
// resumes, and a subsequent failover promotes a slave whose state and
// reply log beyond the resync point arrived only via deltas.
func TestDeltaResyncAfterSlaveRestart(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Build up some state while deltas ship.
	for i := 0; i < 8; i++ {
		invoke(t, c, fmt.Sprintf("set:r%d", i), int64(100+i))
	}
	slaveApp := s.Slave().App().(*Calculator)
	waitUntil(t, 2*time.Second, func() bool {
		return slaveApp.regs.Get("r7") == 107
	}, "slave never received the delta-checkpointed state")

	// Crash the slave; the master keeps serving and its deltas have
	// nowhere to go — the next checkpoint after a reconnect must be full.
	idx := s.CrashSlave()
	if idx < 0 {
		t.Fatal("no slave to crash")
	}
	invoke(t, c, "set:x", 500)
	invoke(t, c, "add:x", 1)

	// Restart: the rejoining slave pulls a full checkpoint.
	r, err := s.RestartReplica(ctx, idx)
	if err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	app := r.App().(*Calculator)
	waitUntil(t, 2*time.Second, func() bool {
		return app.regs.Get("x") == 501
	}, "rejoined slave never caught up on the missed writes")

	// These writes reach the rejoined slave via delta checkpoints only
	// (the first post-restart ship resynchronizes; well under the
	// periodic-full interval thereafter).
	for i := 0; i < 5; i++ {
		invoke(t, c, "add:y", 10)
	}
	lastResp, err := c.Invoke(ctx, "add:y", EncodeArg(10))
	if err != nil {
		t.Fatal(err)
	}
	lastVal, err := DecodeResult(lastResp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if lastVal != 60 {
		t.Fatalf("y after 6 adds = %d, want 60", lastVal)
	}
	waitUntil(t, 2*time.Second, func() bool {
		return app.regs.Get("y") == 60
	}, "delta checkpoints never resumed after resync")

	// Fail over: the promoted slave must serve the delta-shipped state
	// and replay the delta-shipped reply log instead of re-executing.
	s.CrashMaster()
	waitUntil(t, 5*time.Second, func() bool { return s.Master() == r }, "rejoined slave never promoted")
	if got := invoke(t, c, "get:y", 0); got != 60 {
		t.Fatalf("y after failover = %d, want 60", got)
	}
	dup, err := c.Redeliver(ctx, lastResp.Seq, "add:y", EncodeArg(10))
	if err != nil {
		t.Fatalf("post-failover redelivery: %v", err)
	}
	got, err := DecodeResult(dup.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != lastVal {
		t.Fatalf("redelivered reply = %d, want %d (reply log entry shipped via delta)", got, lastVal)
	}
	if v := invoke(t, c, "get:y", 0); v != 60 {
		t.Fatalf("y after redelivery = %d, want 60 (duplicate re-executed)", v)
	}
}
