package ftm

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

// ShardedConfig assembles N independent replica groups over one
// simulated network — the partitioned form of SystemConfig.
type ShardedConfig struct {
	// System is the base application name; group k's replicas run as
	// "<System>-<k>" with group ID strconv.Itoa(k). ('-', not '.': the
	// name is a component path, and paths exclude the fscript member
	// separator.)
	System string
	// FTM is every group's initial mechanism.
	FTM core.ID
	// Shards is the group count (minimum 1).
	Shards int
	// AppFactory builds one application instance per replica.
	AppFactory func() Application
	// Net is the network to attach to (a fresh seeded one when nil).
	Net *transport.MemNetwork
	// HeartbeatInterval and SuspectTimeout tune every group's failover.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	// EventHook receives replica life-cycle events with their group ID.
	EventHook func(group, hostName, event string)
}

// ShardedSystem is N independent two-replica groups plus the routing
// glue: each group has its own hosts, detector, wave batcher,
// accumulation-window controller and reply log — no shared locks
// anywhere on the request path — and a Router spreads keys across them
// on a consistent-hash ring. It is the harness behind the sharded
// benchmarks and the shard-isolation tests.
type ShardedSystem struct {
	Net *transport.MemNetwork

	mu      sync.Mutex
	cfg     ShardedConfig
	groups  []*System
	ids     []string
	clients int
}

// NewShardedSystem boots cfg.Shards independent groups on one network.
func NewShardedSystem(ctx context.Context, cfg ShardedConfig) (*ShardedSystem, error) {
	if cfg.System == "" {
		cfg.System = "app"
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.AppFactory == nil {
		cfg.AppFactory = func() Application { return NewCalculator() }
	}
	if cfg.Net == nil {
		cfg.Net = transport.NewMemNetwork(transport.WithSeed(1))
	}
	s := &ShardedSystem{Net: cfg.Net, cfg: cfg}
	for k := 0; k < cfg.Shards; k++ {
		gid := strconv.Itoa(k)
		gcfg := SystemConfig{
			System: fmt.Sprintf("%s-%s", cfg.System, gid),
			Group:  gid,
			FTM:    cfg.FTM,
			// Distinct host names per group: each group gets its own pair
			// of hosts, so a crash in one group touches no other.
			HostNames:         [2]string{fmt.Sprintf("%s-%s-a", cfg.System, gid), fmt.Sprintf("%s-%s-b", cfg.System, gid)},
			AppFactory:        cfg.AppFactory,
			Net:               cfg.Net,
			HeartbeatInterval: cfg.HeartbeatInterval,
			SuspectTimeout:    cfg.SuspectTimeout,
		}
		if cfg.EventHook != nil {
			hook := cfg.EventHook
			gcfg.EventHook = func(hostName, event string) { hook(gid, hostName, event) }
		}
		g, err := NewSystem(ctx, gcfg)
		if err != nil {
			s.Shutdown()
			return nil, fmt.Errorf("ftm: shard %s: %w", gid, err)
		}
		s.groups = append(s.groups, g)
		s.ids = append(s.ids, gid)
	}
	return s, nil
}

// IDs returns the group IDs, in shard order.
func (s *ShardedSystem) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.ids...)
}

// Groups returns the per-shard systems, in shard order.
func (s *ShardedSystem) Groups() []*System {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*System(nil), s.groups...)
}

// Group returns shard k's system.
func (s *ShardedSystem) Group(k int) *System {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groups[k]
}

// Routes returns the current route table: every group's ID with its
// replica addresses, master first when known.
func (s *ShardedSystem) Routes() []rpc.ShardRoute {
	routes := make([]rpc.ShardRoute, 0, len(s.Groups()))
	s.mu.Lock()
	groups, ids := append([]*System(nil), s.groups...), append([]string(nil), s.ids...)
	s.mu.Unlock()
	for i, g := range groups {
		routes = append(routes, rpc.ShardRoute{ID: ids[i], Replicas: g.Addresses()})
	}
	return routes
}

// NewRouter attaches a new routing client: a fresh endpoint on the
// network and a Router over the current route table. opts configure
// every per-shard client.
func (s *ShardedSystem) NewRouter(opts ...rpc.ClientOption) (*rpc.Router, error) {
	s.mu.Lock()
	s.clients++
	id := fmt.Sprintf("router-%d", s.clients)
	s.mu.Unlock()
	ep, err := s.Net.Endpoint(transport.Address(id))
	if err != nil {
		return nil, err
	}
	return rpc.NewRouter(id, ep, s.Routes(), opts...), nil
}

// Shutdown crashes every group's hosts.
func (s *ShardedSystem) Shutdown() {
	for _, g := range s.Groups() {
		g.Shutdown()
	}
}
