package ftm

import (
	"context"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/rpc"
)

func newTestCluster(t *testing.T, ftmID core.ID, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(context.Background(), ClusterConfig{
		System:            "calc",
		FTM:               ftmID,
		Replicas:          n,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewCluster(%s, %d): %v", ftmID, n, err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func clusterInvoke(t *testing.T, c *rpc.Client, op string, arg int64) int64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := c.Invoke(ctx, op, EncodeArg(arg))
	if err != nil {
		t.Fatalf("Invoke(%s, %d): %v", op, arg, err)
	}
	v, err := DecodeResult(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestClusterRejectsTooFewReplicas(t *testing.T) {
	if _, err := NewCluster(context.Background(), ClusterConfig{FTM: core.PBR, Replicas: 1}); err == nil {
		t.Fatal("1-replica cluster accepted")
	}
}

func TestPBRClusterCheckpointsReachAllBackups(t *testing.T) {
	c := newTestCluster(t, core.PBR, 3)
	client, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	clusterInvoke(t, client, "set:x", 42)
	// The primary broadcasts checkpoints: both backups converge.
	for i, backup := range c.LiveBackups() {
		app := backup.App().(*Calculator)
		waitUntil(t, 2*time.Second, func() bool {
			return app.regs.Get("x") == 42
		}, "backup never received the broadcast checkpoint")
		_ = i
	}
}

func TestClusterSurvivesTwoSequentialMasterCrashes(t *testing.T) {
	c := newTestCluster(t, core.PBR, 3)
	client, err := c.NewClient(rpc.WithCallTimeout(time.Second), rpc.WithMaxRounds(60))
	if err != nil {
		t.Fatal(err)
	}
	clusterInvoke(t, client, "set:x", 100)

	// First crash: rank-1 takes over (its stagger delay is zero).
	first := c.CrashMaster()
	waitUntil(t, 10*time.Second, func() bool {
		m := c.Master()
		return m != nil && m != first
	}, "no takeover after the first master crash")
	if got := clusterInvoke(t, client, "add:x", 1); got != 101 {
		t.Fatalf("after first failover: add = %d, want 101", got)
	}
	// Exactly one master: no split brain among survivors.
	waitUntil(t, 5*time.Second, func() bool { return len(c.LiveBackups()) == 1 }, "backup count wrong after first failover")

	// Second crash: the last survivor takes over (master-alone).
	second := c.CrashMaster()
	waitUntil(t, 10*time.Second, func() bool {
		m := c.Master()
		return m != nil && m != second
	}, "no takeover after the second master crash")
	if got := clusterInvoke(t, client, "add:x", 1); got != 102 {
		t.Fatalf("after second failover: add = %d, want 102", got)
	}
	if got := clusterInvoke(t, client, "get:x", 0); got != 102 {
		t.Fatalf("state after two failovers = %d", got)
	}
}

func TestClusterStaggeredTakeoverIsSingular(t *testing.T) {
	// After the master crash, both backups suspect it; the stagger plus
	// the live-master probe must leave exactly one master.
	c := newTestCluster(t, core.PBR, 3)
	client, err := c.NewClient(rpc.WithCallTimeout(time.Second), rpc.WithMaxRounds(60))
	if err != nil {
		t.Fatal(err)
	}
	clusterInvoke(t, client, "set:x", 7)
	c.CrashMaster()
	waitUntil(t, 10*time.Second, func() bool { return c.Master() != nil }, "no takeover")
	// Give the second backup's staggered check time to run and settle.
	time.Sleep(300 * time.Millisecond)
	masters := 0
	for _, r := range c.Replicas() {
		if r != nil && !r.Host().Crashed() && r.Role() == core.RoleMaster {
			masters++
		}
	}
	if masters != 1 {
		t.Fatalf("masters after takeover = %d, want 1", masters)
	}
	// The remaining backup re-pointed at the new master and keeps
	// receiving checkpoints.
	clusterInvoke(t, client, "set:x", 55)
	backup := c.LiveBackups()[0].App().(*Calculator)
	waitUntil(t, 2*time.Second, func() bool {
		return backup.regs.Get("x") == 55
	}, "surviving backup no longer synchronized after re-pointing")
}

func TestLFRClusterAllFollowersCompute(t *testing.T) {
	c := newTestCluster(t, core.LFR, 3)
	client, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	clusterInvoke(t, client, "set:x", 9)
	clusterInvoke(t, client, "add:x", 1)
	for _, backup := range c.LiveBackups() {
		app := backup.App().(*Calculator)
		waitUntil(t, 2*time.Second, func() bool {
			return app.regs.Get("x") == 10
		}, "follower did not compute the forwarded requests")
	}
}

func TestClusterAdaptationAcrossAllReplicas(t *testing.T) {
	// A differential transition applies to every member of the group.
	c := newTestCluster(t, core.PBR, 3)
	client, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	clusterInvoke(t, client, "set:x", 5)
	for _, r := range c.Replicas() {
		from := core.MustLookup(core.PBR)
		to := core.MustLookup(core.LFR)
		script, env, err := TransitionScript(r.Path(), from.Scheme(r.Role()), to.Scheme(r.Role()))
		if err != nil {
			t.Fatal(err)
		}
		rt := r.Host().Runtime()
		if err := rt.Stop(context.Background(), r.Path()); err != nil {
			t.Fatal(err)
		}
		if _, err := fscriptExecute(rt, script, env); err != nil {
			t.Fatalf("transition on %s: %v", r.Host().Name(), err)
		}
		if err := rt.Start(context.Background(), r.Path()); err != nil {
			t.Fatal(err)
		}
		r.SetFTM(core.LFR)
	}
	if got := clusterInvoke(t, client, "add:x", 2); got != 7 {
		t.Fatalf("post-transition add = %d", got)
	}
	for _, backup := range c.LiveBackups() {
		app := backup.App().(*Calculator)
		waitUntil(t, 2*time.Second, func() bool {
			return app.regs.Get("x") == 7
		}, "follower did not compute after the group transition")
	}
}
