// Package ftm implements the paper's component-based fault tolerance
// mechanisms on top of the reflective component runtime: the
// FaultToleranceProtocol/DuplexProtocol common parts, the variable-feature
// bricks of the Before-Proceed-After generic execution scheme (Table 2),
// the PBR/LFR/TR/Assertion strategies and their compositions, replica
// deployment (Figure 6) and role promotion on failover.
package ftm

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"resilientft/internal/appstate"
	"resilientft/internal/faultinject"
)

// Application is the business logic an FTM protects: the base level of
// the two-layer architecture. The hooks (state manager, assertion) are
// the "application defined assertions" the paper externalizes to
// parameterize FTMs without breaking separation of concerns.
type Application interface {
	// Process executes one deterministic-or-not operation. before is the
	// pre-operation value of the touched register, used by assertions.
	Process(op string, arg int64) (result int64, before int64, err error)
	// Assert is the safety assertion derived from the application's
	// safety analysis (e.g. an FMECA): it checks a result against the
	// operation's invariant. It must be side-effect free.
	Assert(op string, arg, before, result int64) bool
	// StateManager exposes the application state for checkpointing, or
	// appstate.Opaque when the application refuses state access.
	StateManager() appstate.Manager
	// Deterministic reports behavioural determinism.
	Deterministic() bool
}

// ErrBadOp reports a malformed application operation.
var ErrBadOp = errors.New("ftm: malformed operation")

// Calculator is the reference application: a deterministic register
// machine. Operations are "verb:register" with an int64 argument:
//
//	add:x   — add arg to register x, return the new value
//	sub:x   — subtract arg, return the new value
//	set:x   — set register x to arg, return arg
//	get:x   — return register x (arg ignored)
//
// Its safety assertion inverts the operation: for add, result-arg must
// equal the pre-operation value — the kind of executable assertion a
// safety analysis derives.
type Calculator struct {
	regs *appstate.Registers
	// injector, when set, corrupts results on their way out — the fault
	// injection point modelling ALU/bus bit flips.
	injector *faultinject.ValueInjector
	// bugVerb, when set, makes the primary implementation return a
	// deterministically wrong result for that verb — a development fault
	// only the diversified alternate escapes (recovery blocks).
	bugVerb string
	// rng feeds the non-deterministic "rnd" verb; each calculator
	// instance draws its own sequence, so replicas computing
	// independently diverge — unless a semi-active leader's decisions
	// are replayed.
	rng *rand.Rand
	mu  sync.Mutex
}

// _calculatorInstances seeds each calculator's non-deterministic source
// distinctly, so independently computing replicas genuinely diverge on
// "rnd" operations.
var _calculatorInstances atomic.Int64

// NewCalculator returns an empty calculator.
func NewCalculator() *Calculator {
	return &Calculator{
		regs: appstate.NewRegisters(),
		rng:  rand.New(rand.NewSource(1000 + _calculatorInstances.Add(1))),
	}
}

var _ Application = (*Calculator)(nil)

// SetInjector attaches a value-fault injector (nil detaches).
func (c *Calculator) SetInjector(v *faultinject.ValueInjector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.injector = v
}

func (c *Calculator) corrupt(v int64) int64 {
	c.mu.Lock()
	inj := c.injector
	c.mu.Unlock()
	if inj == nil {
		return v
	}
	return inj.Apply(v)
}

func splitOp(op string) (verb, reg string, err error) {
	// Substring split, not strings.SplitN: this runs once per request and
	// the slice header SplitN returns is a heap allocation.
	i := strings.IndexByte(op, ':')
	if i <= 0 || i == len(op)-1 {
		return "", "", fmt.Errorf("%w: %q", ErrBadOp, op)
	}
	return op[:i], op[i+1:], nil
}

// SetBug plants a deterministic development fault in the primary
// implementation of the given verb ("" clears it). The diversified
// alternate is unaffected — the situation recovery blocks exist for.
func (c *Calculator) SetBug(verb string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bugVerb = verb
}

func (c *Calculator) buggy(verb string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bugVerb == verb
}

// Process executes one operation through the primary implementation.
func (c *Calculator) Process(op string, arg int64) (int64, int64, error) {
	verb, reg, err := splitOp(op)
	if err != nil {
		return 0, 0, err
	}
	before := c.regs.Get(reg)
	var result int64
	switch verb {
	case "add":
		result = c.regs.Add(reg, arg)
	case "sub":
		result = c.regs.Add(reg, -arg)
	case "set":
		c.regs.Set(reg, arg)
		result = arg
	case "get":
		result = before
	case "rnd":
		// Non-deterministic: draw a fresh value. Independently computing
		// replicas diverge here; semi-active replication exists to ship
		// this decision instead.
		c.mu.Lock()
		result = c.rng.Int63n(1 << 30)
		c.mu.Unlock()
		c.regs.Set(reg, result)
	default:
		return 0, 0, fmt.Errorf("%w: unknown verb %q", ErrBadOp, verb)
	}
	if c.buggy(verb) {
		// An off-by-one in the reply path: the stored state is right,
		// the reported result is deterministically wrong.
		result++
	}
	return c.corrupt(result), before, nil
}

// ProcessAlternate executes one operation through the diversified
// secondary implementation: the arithmetic is routed through negated
// operands so a design fault in the primary path does not recur, and the
// hardware-fault injection point of the primary path is not on this
// route (diversity).
func (c *Calculator) ProcessAlternate(op string, arg int64) (int64, int64, error) {
	verb, reg, err := splitOp(op)
	if err != nil {
		return 0, 0, err
	}
	before := c.regs.Get(reg)
	var result int64
	switch verb {
	case "add":
		// a + b computed as -((-a) - b).
		c.regs.Set(reg, -(-before - arg))
		result = c.regs.Get(reg)
	case "sub":
		c.regs.Set(reg, -(-before + arg))
		result = c.regs.Get(reg)
	case "set":
		c.regs.Set(reg, -(-arg))
		result = c.regs.Get(reg)
	case "get":
		result = -(-before)
	case "rnd":
		c.mu.Lock()
		result = c.rng.Int63n(1 << 30)
		c.mu.Unlock()
		c.regs.Set(reg, result)
	default:
		return 0, 0, fmt.Errorf("%w: unknown verb %q", ErrBadOp, verb)
	}
	return result, before, nil
}

var (
	_ AlternateProvider = (*Calculator)(nil)
	_ DecisionRecorder  = (*Calculator)(nil)
)

// Assert checks the operation's inverse invariant.
func (c *Calculator) Assert(op string, arg, before, result int64) bool {
	verb, _, err := splitOp(op)
	if err != nil {
		return false
	}
	switch verb {
	case "add":
		return result-arg == before
	case "sub":
		return result+arg == before
	case "set":
		return result == arg
	case "get":
		return result == before
	case "rnd":
		// A freshly drawn value has no invariant to check.
		return true
	default:
		return false
	}
}

// ProcessRecording executes op while capturing the non-deterministic
// decisions made along the way (semi-active leader side).
func (c *Calculator) ProcessRecording(op string, arg int64) (int64, int64, []int64, error) {
	verb, reg, err := splitOp(op)
	if err != nil {
		return 0, 0, nil, err
	}
	if verb != "rnd" {
		result, before, err := c.Process(op, arg)
		return result, before, nil, err
	}
	before := c.regs.Get(reg)
	c.mu.Lock()
	value := c.rng.Int63n(1 << 30)
	c.mu.Unlock()
	c.regs.Set(reg, value)
	return c.corrupt(value), before, []int64{value}, nil
}

// ProcessReplaying executes op consuming previously captured decisions
// instead of drawing fresh ones (semi-active follower side).
func (c *Calculator) ProcessReplaying(op string, arg int64, decisions []int64) (int64, int64, error) {
	verb, reg, err := splitOp(op)
	if err != nil {
		return 0, 0, err
	}
	if verb != "rnd" {
		return c.Process(op, arg)
	}
	if len(decisions) == 0 {
		return 0, 0, fmt.Errorf("%w: rnd replay without a decision", ErrBadOp)
	}
	before := c.regs.Get(reg)
	c.regs.Set(reg, decisions[0])
	return decisions[0], before, nil
}

// StateManager exposes the register file.
func (c *Calculator) StateManager() appstate.Manager { return c.regs }

// Deterministic reports true: the calculator is a pure register machine.
func (c *Calculator) Deterministic() bool { return true }

// Opaque wraps an application to hide its state — modelling a version
// that no longer provides state access (an A variation).
type Opaque struct {
	Application
}

// StateManager refuses access.
func (o Opaque) StateManager() appstate.Manager { return appstate.Opaque{} }

// NonDeterministic wraps an application to declare non-determinism —
// modelling a version whose outputs depend on local scheduling (an A
// variation). The computation itself is unchanged; what matters to the
// FTM layer is the declared characteristic.
type NonDeterministic struct {
	Application
}

// Deterministic reports false.
func (NonDeterministic) Deterministic() bool { return false }

// FullStateOnly wraps an application to hide its state manager's delta
// tracking — modelling a version whose state manager supports only full
// captures (an A variation). A checkpointing FTM protecting it ships a
// full checkpoint per request, the paper's original cost model; the
// experiments use this to contrast the two regimes.
type FullStateOnly struct {
	Application
}

// fullOnlyManager exposes just the base Manager methods of the wrapped
// manager, so type assertions for appstate.DeltaCapturer fail.
type fullOnlyManager struct {
	appstate.Manager
}

// StateManager exposes the capture/restore-only view of the state.
func (f FullStateOnly) StateManager() appstate.Manager {
	return fullOnlyManager{f.Application.StateManager()}
}
