package ftm

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// TestFailoverMidBatchReplaysAckedWaves crashes the master while a burst
// of concurrent clients is in flight — commit waves forming, shipping,
// some acked, some not. The group-commit invariant under failover: every
// reply a client received was covered by an acknowledged ship, so the
// promoted slave must replay it verbatim (flagged Replayed, same value)
// and never re-execute it. Requests that never got a reply are retried
// under their original sequence numbers; at-most-once must leave each
// register at exactly one increment per operation.
func TestFailoverMidBatchReplaysAckedWaves(t *testing.T) {
	const (
		clients = 6
		opsEach = 12
	)
	for _, id := range []core.ID{core.PBR, core.LFR} {
		t.Run(string(id), func(t *testing.T) {
			s := newTestSystem(t, id)
			ctx := context.Background()

			type ack struct {
				seq  uint64
				want int64
			}
			acked := make([][]ack, clients)
			cs := make([]*clientHarness, clients)
			for ci := range cs {
				c, err := s.NewClient()
				if err != nil {
					t.Fatal(err)
				}
				cs[ci] = &clientHarness{Client: c, op: fmt.Sprintf("add:r%d", ci)}
			}

			// Crash the master partway into the burst, while waves are in
			// flight.
			crashed := make(chan struct{})
			go func() {
				defer close(crashed)
				time.Sleep(15 * time.Millisecond)
				s.CrashMaster()
			}()

			var wg sync.WaitGroup
			for ci, ch := range cs {
				wg.Add(1)
				go func(ci int, ch *clientHarness) {
					defer wg.Done()
					for seq := uint64(1); seq <= opsEach; seq++ {
						// Explicit sequence numbers so a failed attempt can be
						// retried under the same request identity later.
						resp, err := ch.Redeliver(ctx, seq, ch.op, EncodeArg(1))
						if err != nil {
							ch.failed = append(ch.failed, seq)
							continue
						}
						v, err := DecodeResult(resp.Payload)
						if err != nil {
							t.Errorf("client %d seq %d: %v", ci, seq, err)
							return
						}
						acked[ci] = append(acked[ci], ack{seq: seq, want: v})
					}
				}(ci, ch)
			}
			wg.Wait()
			<-crashed
			waitUntil(t, 5*time.Second, func() bool { return s.Master() != nil }, "no replica promoted after mid-batch crash")

			for ci, ch := range cs {
				// Every reply acked before (or across) the crash was covered
				// by an acknowledged ship: the survivor replays it.
				for _, a := range acked[ci] {
					dup, err := ch.Redeliver(ctx, a.seq, ch.op, EncodeArg(1))
					if err != nil {
						t.Fatalf("client %d seq %d: post-failover redelivery: %v", ci, a.seq, err)
					}
					got, err := DecodeResult(dup.Payload)
					if err != nil {
						t.Fatal(err)
					}
					if got != a.want {
						t.Errorf("client %d seq %d: redelivery = %d, want %d (acked reply lost or re-executed)",
							ci, a.seq, got, a.want)
					}
					if !dup.Replayed {
						t.Errorf("client %d seq %d: acked reply not replayed from the log", ci, a.seq)
					}
				}
				// Unacknowledged requests are retried under the same identity;
				// at-most-once decides whether each executes now or replays.
				for _, seq := range ch.failed {
					if _, err := ch.Redeliver(ctx, seq, ch.op, EncodeArg(1)); err != nil {
						t.Fatalf("client %d seq %d: retry after failover: %v", ci, seq, err)
					}
				}
				// Exactly one increment per operation, acked or retried.
				final, err := ch.Redeliver(ctx, opsEach+1, fmt.Sprintf("get:r%d", ci), EncodeArg(0))
				if err != nil {
					t.Fatal(err)
				}
				v, err := DecodeResult(final.Payload)
				if err != nil {
					t.Fatal(err)
				}
				if v != opsEach {
					t.Errorf("client %d register = %d, want %d (an operation executed twice or got lost)", ci, v, opsEach)
				}
			}
		})
	}
}

// clientHarness pairs a client with its register op and the sequence
// numbers whose first delivery attempt failed.
type clientHarness struct {
	*rpc.Client
	op     string
	failed []uint64
}

// TestRedeliveryDuringInFlightWave injects network latency so every
// commit-wave ship takes visible time, then races a duplicate delivery
// against the original request's in-flight wave. The duplicate finds the
// reply already logged (replies are recorded before the After brick
// ships) and must ride a covering wave rather than re-execute — both
// deliveries return the same value and the register moves exactly once
// per sequence number.
func TestRedeliveryDuringInFlightWave(t *testing.T) {
	const (
		clients = 4
		opsEach = 8
		latency = 3 * time.Millisecond
	)
	for _, id := range []core.ID{core.PBR, core.LFR} {
		t.Run(string(id), func(t *testing.T) {
			waves0 := mWavePBR.Value() + mWaveLFR.Value()
			cfg := fastConfig(id)
			cfg.Net = transport.NewMemNetwork(transport.WithSeed(1), transport.WithLatency(latency))
			// Latency slows failure-detector heartbeats too; keep the pair
			// comfortably inside the suspect timeout.
			cfg.SuspectTimeout = 500 * time.Millisecond
			s, err := NewSystem(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(s.Shutdown)
			ctx := context.Background()

			var wg sync.WaitGroup
			for ci := 0; ci < clients; ci++ {
				c, err := s.NewClient()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(ci int, c *rpc.Client) {
					defer wg.Done()
					op := fmt.Sprintf("add:r%d", ci)
					for seq := uint64(1); seq <= opsEach; seq++ {
						type result struct {
							v        int64
							replayed bool
							err      error
						}
						results := make(chan result, 2)
						deliver := func() {
							resp, err := c.Redeliver(ctx, seq, op, EncodeArg(1))
							if err != nil {
								results <- result{err: err}
								return
							}
							v, err := DecodeResult(resp.Payload)
							results <- result{v: v, replayed: resp.Replayed, err: err}
						}
						go deliver()
						// One network hop later the original reached the master
						// and its reply is recorded, but the covering ship (two
						// more hops) is still in flight: the duplicate lands
						// mid-wave.
						time.Sleep(latency + latency/2)
						go deliver()
						first := <-results
						second := <-results
						if first.err != nil || second.err != nil {
							t.Errorf("client %d seq %d: delivery errors: %v / %v", ci, seq, first.err, second.err)
							return
						}
						if first.v != second.v {
							t.Errorf("client %d seq %d: concurrent deliveries disagree: %d vs %d (double execution)",
								ci, seq, first.v, second.v)
							return
						}
					}
					// Each sequence number incremented the register once.
					resp, err := c.Redeliver(ctx, opsEach+1, fmt.Sprintf("get:r%d", ci), EncodeArg(0))
					if err != nil {
						t.Error(err)
						return
					}
					v, err := DecodeResult(resp.Payload)
					if err != nil {
						t.Error(err)
						return
					}
					if v != opsEach {
						t.Errorf("client %d register = %d, want %d (a duplicate re-executed)", ci, v, opsEach)
					}
				}(ci, c)
			}
			wg.Wait()
			if mWavePBR.Value()+mWaveLFR.Value() == waves0 {
				t.Fatal("no commit waves shipped during the test — the group-commit path was not exercised")
			}
		})
	}
}

// TestTraceContinuityAcrossFailover kills the master mid-wave and checks
// that one client trace id stitches the whole story together: the
// original execution's spans (client send, pipeline stages, wave ship,
// peer ship, slave apply) and — after the crash — the promoted slave's
// replay of the logged reply, all under the same deterministic trace id
// derived from (client id, sequence number).
func TestTraceContinuityAcrossFailover(t *testing.T) {
	const opsEach = 6
	for _, id := range []core.ID{core.PBR, core.LFR} {
		t.Run(string(id), func(t *testing.T) {
			s := newTestSystem(t, id)
			ctx := context.Background()
			c, err := s.NewClient(rpc.WithAlwaysTrace())
			if err != nil {
				t.Fatal(err)
			}

			for seq := uint64(1); seq <= opsEach; seq++ {
				if _, err := c.Redeliver(ctx, seq, "add:x", EncodeArg(1)); err != nil {
					t.Fatalf("seq %d: %v", seq, err)
				}
			}

			// The pre-crash trace of seq 1 already spans both replicas (the
			// test system shares the process-wide span recorder).
			traceID := telemetry.TraceIDFor(c.ID(), 1)
			names := func() map[string]int {
				got := map[string]int{}
				for _, sp := range telemetry.DefaultSpans().ForTrace(traceID) {
					got[sp.Name]++
				}
				return got
			}
			pre := names()
			for _, want := range []string{"rpc.client", "ftm.execute", "ftm.before", "ftm.proceed", "ftm.peer.ship", "ftm.replica.apply"} {
				if pre[want] == 0 {
					t.Fatalf("pre-crash trace %016x missing %q spans: %v", traceID, want, pre)
				}
			}
			if pre["ftm.wave.ship"] == 0 && pre["ftm.wave.cover"] == 0 {
				t.Fatalf("pre-crash trace %016x has neither a wave ship nor a cover span: %v", traceID, pre)
			}

			// Kill the master while a fresh burst keeps waves in flight, then
			// redeliver seq 1 to the promoted slave.
			done := make(chan struct{})
			go func() {
				defer close(done)
				for seq := uint64(opsEach + 1); seq <= opsEach+4; seq++ {
					_, _ = c.Redeliver(ctx, seq, "add:x", EncodeArg(1))
				}
			}()
			time.Sleep(2 * time.Millisecond)
			s.CrashMaster()
			<-done
			waitUntil(t, 5*time.Second, func() bool { return s.Master() != nil }, "no replica promoted after crash")

			dup, err := c.Redeliver(ctx, 1, "add:x", EncodeArg(1))
			if err != nil {
				t.Fatalf("post-failover redelivery: %v", err)
			}
			if !dup.Replayed {
				t.Fatal("post-failover redelivery was not replayed from the log")
			}
			post := names()
			if post["ftm.replay"] == 0 {
				t.Fatalf("replayed reply left no ftm.replay span under trace %016x: %v", traceID, post)
			}
			if post["rpc.client"] < 2 {
				t.Fatalf("redelivery did not join the original trace: %v", post)
			}
		})
	}
}
