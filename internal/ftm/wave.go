package ftm

import (
	"context"
	"sync"
	"time"

	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
)

// Group-commit replication support. Concurrent requests that reach a
// synchronizing After brick (the PBR checkpoint, the LFR commit
// notification) are grouped into commit waves: one member becomes the
// batch leader and ships a single synchronization message covering every
// member, and each member's reply is released only once a ship whose
// acknowledgement covers it completes — the same reply-release invariant
// the per-request path enforces, at a fraction of the message count.
// Deltas make this free for PBR: a delta is "the write-set since the
// last acknowledged version", so one capture taken after N replies were
// recorded covers all N requests.

// commitWave is one group of requests awaiting a covering ship. A wave
// accumulates members while it sits at the tail of the notifier's queue;
// detaching it closes it to new members.
type commitWave struct {
	members int
	// maxSeq is the highest client sequence number in the wave,
	// informational metadata on shipped checkpoints.
	maxSeq uint64
	// resps are the member replies a commit-style ship must carry (LFR);
	// checkpoint-style ships (PBR) leave it empty because the state
	// capture covers the reply log itself.
	resps []rpc.Response
	// traces are the sampled members' span contexts: the covering ship
	// records one "ftm.wave.cover" span under each, so every sampled
	// trace shows which ship released its reply (usually none — sampling
	// is the exception).
	traces []telemetry.SpanContext

	done    chan struct{} // closed once the covering ship completed
	outcome string        // "ok" or "degraded", valid after done
	err     error         // ship failure, valid after done
}

// resolved reports whether the wave's covering ship completed.
func (w *commitWave) resolved() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// resolve publishes the ship outcome and releases every member.
func (w *commitWave) resolve(outcome string, err error) {
	w.outcome = outcome
	w.err = err
	close(w.done)
}

// waveNotifier coordinates wave membership and batch leadership. The
// leadership token (a buffered channel of capacity one) orders ships:
// whoever holds it captures and ships alone, so the ack bookkeeping a
// shipper maintains needs no further locking — the token handoff is the
// happens-before edge between successive leaders. The token lives on the
// notifier rather than on any wave, so a token released when no waiter
// was listening is simply claimed by the next request to arrive.
type waveNotifier struct {
	mu      sync.Mutex
	queue   []*commitWave // FIFO; the tail wave is open to new members
	maxWave int           // member cap per ship; <=0 means unbounded
	leadCh  chan struct{} // leadership token
	// accum sizes the leader's accumulation window (see accum.go).
	accum *accumControl
}

func newWaveNotifier(maxWave int) *waveNotifier {
	n := &waveNotifier{maxWave: maxWave, leadCh: make(chan struct{}, 1), accum: newAccumControl()}
	n.leadCh <- struct{}{}
	return n
}

func (n *waveNotifier) maxWaveNow() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.maxWave
}

func (n *waveNotifier) setMaxWave(m int) {
	n.mu.Lock()
	n.maxWave = m
	n.mu.Unlock()
}

// join adds one request to the open wave, starting a new wave when none
// is open or the open one is full.
func (n *waveNotifier) join(seq uint64, resp *rpc.Response, trace telemetry.SpanContext) *commitWave {
	n.mu.Lock()
	defer n.mu.Unlock()
	var w *commitWave
	if len(n.queue) > 0 {
		tail := n.queue[len(n.queue)-1]
		if n.maxWave <= 0 || tail.members < n.maxWave {
			w = tail
		}
	}
	if w == nil {
		w = &commitWave{done: make(chan struct{})}
		n.queue = append(n.queue, w)
	}
	w.members++
	if seq > w.maxSeq {
		w.maxSeq = seq
	}
	if resp != nil {
		w.resps = append(w.resps, *resp)
	}
	if trace.Valid() {
		w.traces = append(w.traces, trace)
	}
	return w
}

// detach pops queued waves for one ship, oldest first, merging whole
// waves while the combined membership stays within maxWave (at least one
// wave is always taken, so progress never stalls on a lowered cap). The
// detached waves are closed to new members; later joiners start a fresh
// wave behind them.
func (n *waveNotifier) detach() []*commitWave {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.queue) == 0 {
		return nil
	}
	taken := 1
	members := n.queue[0].members
	for taken < len(n.queue) {
		next := n.queue[taken]
		if n.maxWave > 0 && members+next.members > n.maxWave {
			break
		}
		members += next.members
		taken++
	}
	batch := n.queue[:taken:taken]
	n.queue = n.queue[taken:]
	return batch
}

// coverSpans records one "ftm.wave.cover" span under every sampled
// member trace of a shipped batch, so each trace shows the ship whose
// acknowledgement released its reply — including traces whose request
// was not the batch leader. Called by the ship closures after the ship
// completed; a batch with no sampled members (the common case) records
// nothing.
func coverSpans(batch []*commitWave, mech string, start time.Time, outcome string) {
	dur := time.Since(start)
	spans := telemetry.DefaultSpans()
	for _, w := range batch {
		for _, tr := range w.traces {
			spans.Add(tr, "ftm.wave.cover", start, dur, "ftm", mech, "outcome", outcome)
		}
	}
}

// release returns the leadership token. The channel is buffered, so the
// token parks there until the next contender claims it.
func (n *waveNotifier) release() {
	select {
	case n.leadCh <- struct{}{}:
	default: // token already parked; never block
	}
}

// ride blocks until a ship covering w completes, taking batch leadership
// whenever the token is free. A leader ships detached batches until its
// own wave is resolved, then hands the token on — no request ships on
// behalf of others forever.
func (n *waveNotifier) ride(ctx context.Context, w *commitWave, ship func([]*commitWave) (string, error)) (string, error) {
	for {
		select {
		case <-w.done:
			return w.outcome, w.err
		case <-ctx.Done():
			return "", ctx.Err()
		case <-n.leadCh:
			// Accumulation window: concurrent requests that are still
			// mid-pipeline (or woken by the previous ship) get time to
			// reach join before the leader detaches. This is what makes
			// waves actually fill on few-core hosts, where the scheduler's
			// wake-chaining would otherwise run one request to completion
			// before starting the next. The controller sizes the window
			// from recent batch fill and ship latency (see accum.go); its
			// floor is a single yield per ship, not per request.
			n.accum.retune(n.maxWaveNow())
			n.accum.linger()
			for !w.resolved() {
				batch := n.detach()
				if len(batch) == 0 {
					break
				}
				outcome, err := ship(batch)
				for _, b := range batch {
					b.resolve(outcome, err)
				}
			}
			n.release()
			if w.resolved() {
				return w.outcome, w.err
			}
		}
	}
}
