package ftm

import (
	"fmt"
	"strings"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/fscript"
)

// SlotRef returns the protocol reference name driving a pipeline slot.
func SlotRef(slot string) string {
	switch slot {
	case core.SlotBefore:
		return "before"
	case core.SlotProceed:
		return "proceed"
	case core.SlotAfter:
		return "after"
	default:
		return ""
	}
}

// TransitionScript builds the differential reconfiguration from one
// execution scheme to another on the composite at path: for each variable
// feature that differs, the old brick is stopped, unwired and removed,
// and the replacement is added, rewired and started — nothing else is
// touched (§5.2). extra statements (e.g. a role change) are appended
// before the script's end. The returned environment carries the new
// bricks' definitions, deployable through the host registry.
func TransitionScript(path string, from, to core.Scheme, extra ...string) (*fscript.Script, fscript.Env, error) {
	var b strings.Builder
	env := fscript.Env{Definitions: make(map[string]component.Definition)}
	for _, slot := range core.Diff(from, to) {
		toType := to.Slots()[slot]
		defName := "new_" + slot
		def, err := brickDefinition(toType)
		if err != nil {
			return nil, fscript.Env{}, err
		}
		def.Name = slot
		env.Definitions[defName] = def

		ref := SlotRef(slot)
		fmt.Fprintf(&b, "stop %s/%s\n", path, slot)
		fmt.Fprintf(&b, "unwire %s/%s.%s\n", path, NameProtocol, ref)
		fmt.Fprintf(&b, "remove %s/%s\n", path, slot)
		fmt.Fprintf(&b, "add %s as %s/%s\n", defName, path, slot)
		for _, r := range def.References {
			target, ok := refTarget[r.Name]
			if !ok {
				return nil, fscript.Env{}, fmt.Errorf("ftm: no wiring plan for reference %q", r.Name)
			}
			fmt.Fprintf(&b, "wire %s/%s.%s -> %s/%s.%s\n", path, slot, r.Name, path, target[0], target[1])
		}
		fmt.Fprintf(&b, "wire %s/%s.%s -> %s/%s.%s\n", path, NameProtocol, ref, path, slot, SlotService(slot))
		fmt.Fprintf(&b, "start %s/%s\n", path, slot)
	}
	for _, stmt := range extra {
		b.WriteString(stmt)
		b.WriteByte('\n')
	}
	script, err := fscript.Parse(b.String())
	if err != nil {
		return nil, fscript.Env{}, fmt.Errorf("ftm: generated transition script: %w", err)
	}
	return script, env, nil
}

// RoleChangeStmt returns the script statement switching the protocol's
// role on the composite at path.
func RoleChangeStmt(path string, role core.Role) string {
	return fmt.Sprintf("set %s/%s.role = %q", path, NameProtocol, string(role))
}
