package ftm

import (
	"errors"
	"sync"

	"resilientft/internal/rpc"
)

// Service names inside an FTM composite. The slot components
// (syncBefore/proceed/syncAfter) all expose SvcSync or SvcExec so a
// differential transition can rewire a replacement without touching its
// callers.
const (
	// SvcRequest is the protocol's client-facing service (promoted to the
	// composite boundary).
	SvcRequest = "request"
	// SvcReplica is the protocol's inter-replica service.
	SvcReplica = "replica"
	// SvcControl is the protocol's control service (detector
	// notifications, role queries).
	SvcControl = "control"
	// SvcSync is the service of syncBefore/syncAfter bricks.
	SvcSync = "sync"
	// SvcExec is the service of proceed bricks.
	SvcExec = "exec"
	// SvcLog is the reply log service.
	SvcLog = "log"
	// SvcProcess is the server's computation service.
	SvcProcess = "process"
	// SvcState is the server's state-management service.
	SvcState = "state"
	// SvcAssert is the server's safety-assertion service.
	SvcAssert = "assert"
	// SvcAlternate is the server's diversified-alternate computation
	// service (recovery blocks).
	SvcAlternate = "alternate"
	// SvcRecord is the server's decision-capturing computation service
	// (semi-active leader).
	SvcRecord = "record"
	// SvcReplay is the server's decision-replaying computation service
	// (semi-active follower).
	SvcReplay = "replay"
	// SvcSend is the peer bridge's outbound service.
	SvcSend = "send"
)

// Operations on the services above.
const (
	// OpRun drives a pipeline brick with a *Call payload.
	OpRun = "run"
	// OpFlush asks a syncAfter brick to confirm replica coverage of a
	// logged reply about to be replayed (payload: the rpc.Response). The
	// synchronizing bricks ride a commit wave; bricks with no replica to
	// cover answer "ok" immediately.
	OpFlush = "flush"

	// Reply log operations.
	OpLookup   = "lookup"
	OpRecord   = "record"
	OpSnapshot = "snapshot"
	OpRestoreL = "restore"
	// OpSnapshotMarked returns the full snapshot paired with the log's
	// journal mark, the base for later incremental snapshots.
	OpSnapshotMarked = "snapshot-marked"
	// OpSnapshotSince returns the responses recorded after a mark.
	OpSnapshotSince = "snapshot-since"
	// OpAppendLog records a batch of responses (checkpoint-delta tails).
	OpAppendLog = "append"

	// Server state operations.
	OpCapture      = "capture"
	OpRestoreState = "restore"
	OpAccess       = "access"
	// OpCaptureVersioned captures the state paired with its version.
	OpCaptureVersioned = "capture-versioned"
	// OpCaptureDelta captures the write-set since a base version.
	OpCaptureDelta = "capture-delta"
	// OpApplyDelta applies a write-set to a matching base version.
	OpApplyDelta = "apply-delta"
	// OpApplyFull replaces the state and adopts the sender's version.
	OpApplyFull = "apply-full"

	// Peer bridge operation; the message Meta carries the message kind.
	OpCall = "call"

	// Control operations.
	OpPeerChange = "peer-change" // payload bool: suspected
	OpRole       = "role"
	OpMasterOnly = "master-alone"
)

// Meta keys.
const (
	// MetaKind carries the inter-replica message kind on peer sends.
	MetaKind = "kind"
	// MetaTrace carries a telemetry.SpanContext (String form) on
	// messages that cross component boundaries outside the *Call
	// pipeline: peer sends, OpFlush replay coverage, and inbound
	// replica dispatch. Absent or malformed values mean "unsampled".
	MetaTrace = "trace"
)

// Inter-replica message kinds (within transport kind KindReplica).
const (
	// MsgPBRCheckpoint ships a full checkpoint from primary to backup.
	MsgPBRCheckpoint = "pbr.checkpoint"
	// MsgPBRDelta ships an incremental checkpoint (state write-set plus
	// reply-log tail since the last acknowledged one). The backup answers
	// "resync" instead of "ack" when its base version mismatches, which
	// makes the primary fall back to a full checkpoint.
	MsgPBRDelta = "pbr.delta"
	// MsgPBRPull asks the primary for a full checkpoint (slave rejoin).
	MsgPBRPull = "pbr.pull"
	// MsgLFRExec forwards a request for parallel execution on the
	// follower.
	MsgLFRExec = "lfr.exec"
	// MsgLFRCommit notifies the follower that the leader replied.
	MsgLFRCommit = "lfr.commit"
	// MsgLFRCommitBatch notifies the follower of a whole commit wave at
	// once (group commit): the payload is the rpc.ResponseList of every
	// reply the wave released.
	MsgLFRCommitBatch = "lfr.commit.batch"
	// MsgAssertExec asks the peer to re-execute a request whose local
	// result failed the safety assertion (A&Duplex escalation).
	MsgAssertExec = "assert.exec"
	// MsgRoleQuery asks a replica for its current role and mastership
	// age — the split-brain resolution probe.
	MsgRoleQuery = "role.query"
	// MsgXPAExec ships a request plus the leader's captured
	// non-deterministic decisions to a semi-active follower for replay
	// (Delta-4 XPA style).
	MsgXPAExec = "xpa.exec"
)

// KindReplica is the transport message kind of inter-replica traffic.
const KindReplica = "ftm.replica"

// Call is the context flowing through the Before-Proceed-After pipeline
// of one request. Bricks read and annotate it; within a replica it is
// passed by pointer.
type Call struct {
	Req    rpc.Request
	Result rpc.Response
	// Before is the pre-operation value reported by the application,
	// input to safety assertions.
	Before int64
	// Decisions are the non-deterministic choices captured by a
	// semi-active leader, replayed verbatim by its follower.
	Decisions []int64
	// StateSnapshot is the pre-processing state captured by tr.capture
	// (standalone TR).
	StateSnapshot []byte
	// HasSnapshot marks StateSnapshot as valid (it may be legitimately
	// empty).
	HasSnapshot bool
	// Unrecoverable marks a call whose redundant executions never agreed.
	Unrecoverable bool
}

// ResultValue decodes the call's int64 result payload.
func (c *Call) ResultValue() (int64, error) {
	return DecodeResult(c.Result.Payload)
}

// reqCarrier carries one client request into the protocol component and
// its response back out. It crosses the boundary by pointer from a
// pool, so the per-request component dispatch does not box two structs
// into interface payloads. The replica transport handler owns the
// carrier; nothing downstream may retain it.
type reqCarrier struct {
	Req  rpc.Request
	Resp rpc.Response
}

var reqCarrierPool = sync.Pool{New: func() any { return new(reqCarrier) }}

// respListPool recycles decoded response batches (commit waves,
// checkpoint-delta reply tails): the backing array's capacity survives
// from batch to batch, so the steady state decodes without growing.
var respListPool = sync.Pool{New: func() any { return new(rpc.ResponseList) }}

func getRespList() *rpc.ResponseList { return respListPool.Get().(*rpc.ResponseList) }

func putRespList(l *rpc.ResponseList) {
	*l = (*l)[:0]
	respListPool.Put(l)
}

// callPool recycles the *Call flowing through the Before-Proceed-After
// pipeline. A Call lives exactly as long as one execute: bricks annotate
// it but never retain it, so the executing goroutine returns it once the
// result has been copied out.
var callPool = sync.Pool{New: func() any { return new(Call) }}

func getCall() *Call { return callPool.Get().(*Call) }

func putCall(c *Call) {
	d := c.Decisions[:0]
	*c = Call{}
	c.Decisions = d
	callPool.Put(c)
}

func getReqCarrier() *reqCarrier { return reqCarrierPool.Get().(*reqCarrier) }

func putReqCarrier(c *reqCarrier) {
	*c = reqCarrier{}
	reqCarrierPool.Put(c)
}

// Errors surfaced by pipeline bricks.
var (
	// ErrAssertionFailed reports a safety-assertion violation on the
	// local result; the protocol escalates to the peer (the paper's
	// "re-execution on a different node").
	ErrAssertionFailed = errors.New("ftm: safety assertion failed")
	// ErrUnrecoverable reports redundant executions that never agreed —
	// the fault exceeded the tolerated model.
	ErrUnrecoverable = errors.New("ftm: redundant executions disagree, fault model exceeded")
	// ErrNotMaster reports a client request landing on the slave.
	ErrNotMaster = errors.New("ftm: not master")
	// ErrNotSlave reports a slave-role inter-replica message (forwarded
	// request, commit, checkpoint) landing on a master — the guard that
	// keeps a split brain from ping-ponging executions.
	ErrNotSlave = errors.New("ftm: not slave")
	// ErrNoPeer reports an inter-replica exchange with no live peer.
	ErrNoPeer = errors.New("ftm: no live peer")
	// ErrNoReplicaForGroup reports an inter-replica message whose group
	// stamp matches no replica on the receiving endpoint.
	ErrNoReplicaForGroup = errors.New("ftm: no replica for group")
)
