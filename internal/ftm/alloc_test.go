package ftm

import (
	"bytes"
	"testing"

	"resilientft/internal/appstate"
	"resilientft/internal/transport"
)

// TestAllocBudgetSlaveApplyDecode pins the decode half of the slave
// apply path at zero allocations per inter-replica message: envelope
// decode (interned strings, payload aliasing the frame) plus the
// in-place delta-checkpoint decode of its payload. The state and log
// writes behind it allocate only for what they retain; the wire-to-
// struct part must not contribute. transport.Decode's any parameter
// alone would cost one heap escape per message here, which is exactly
// the regression this budget catches.
func TestAllocBudgetSlaveApplyDecode(t *testing.T) {
	dc := appstate.DeltaCheckpoint{
		BaseVersion: 10,
		ToVersion:   11,
		Delta:       bytes.Repeat([]byte{0x42}, 96),
		ReplyTail:   bytes.Repeat([]byte{0x17}, 48),
		LastSeq:     321,
	}
	env := replicaEnvelope{
		Kind:    MsgPBRDelta,
		From:    "127.0.0.1:7001",
		System:  "alloc-test",
		Payload: dc.AppendFast([]byte{transport.FastTag}),
	}
	wire := env.AppendFast([]byte{transport.FastTag})

	var got replicaEnvelope
	allocs := testing.AllocsPerRun(200, func() {
		if err := decodeEnvelope(wire, &got); err != nil {
			t.Fatal(err)
		}
		inner, err := appstate.DecodeDeltaCheckpointInPlace(got.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if inner.ToVersion != dc.ToVersion || inner.LastSeq != dc.LastSeq {
			t.Fatalf("apply decode drifted: %+v", inner)
		}
	})
	if allocs > 0 {
		t.Errorf("slave apply decode allocates %.0f/op, budget 0", allocs)
	}
}
