package ftm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/transport"
)

// TestMasterRefusesSlaveMessages pins the split-brain guard: forwarded
// requests, commits and checkpoints are slave-role messages and must be
// refused by a master, otherwise two concurrent masters ping-pong
// executions between each other.
func TestMasterRefusesSlaveMessages(t *testing.T) {
	s := newTestSystem(t, core.LFR)
	master := s.Master()
	svc, err := master.boundary(SvcReplica)
	if err != nil {
		t.Fatal(err)
	}
	req, err := transport.Encode(rpcRequest("c9", 1, "add:x", 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{MsgLFRExec, MsgLFRCommit, MsgPBRCheckpoint} {
		_, err := svc.Invoke(context.Background(), component.Message{Op: kind, Payload: req})
		if !errors.Is(err, ErrNotSlave) {
			t.Errorf("master accepted %q: err = %v, want ErrNotSlave", kind, err)
		}
	}
	// Role queries are answered by any role.
	reply, err := svc.Invoke(context.Background(), component.Message{Op: MsgRoleQuery})
	if err != nil {
		t.Fatalf("role query: %v", err)
	}
	data, _ := reply.Payload.([]byte)
	var info roleInfo
	if err := transport.Decode(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.Role != string(core.RoleMaster) {
		t.Fatalf("role = %s", info.Role)
	}
}

// TestSplitBrainResolvesByDemotion forces a split brain (the slave is
// partitioned away long enough to promote itself while the master lives)
// and verifies that on reconnection exactly one master remains — the
// original one — and the usurper demotes and resynchronizes.
func TestSplitBrainResolvesByDemotion(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 5)

	original := s.Master()
	usurper := s.Slave()
	// Partition the replicas from each other (clients still reach both):
	// the slave suspects the master and promotes.
	s.Net.Partition(original.Host().Addr(), usurper.Host().Addr())
	waitUntil(t, 5*time.Second, func() bool {
		return usurper.Role() == core.RoleMaster
	}, "partitioned slave never promoted")

	// Heal: both replicas are master until the resolution runs; the
	// usurper's younger mastership must yield.
	s.Net.Heal(original.Host().Addr(), usurper.Host().Addr())
	waitUntil(t, 5*time.Second, func() bool {
		return usurper.Role() == core.RoleSlave
	}, "split brain never resolved")
	if original.Role() != core.RoleMaster {
		t.Fatal("original master demoted too")
	}
	// The demoted replica is back on the slave scheme and resynced.
	scheme, err := usurper.CurrentScheme()
	if err != nil {
		t.Fatal(err)
	}
	if scheme != core.MustLookup(core.PBR).SlaveScheme {
		t.Fatalf("demoted scheme = %+v", scheme)
	}
	joined := strings.Join(usurper.Events(), "; ")
	if !strings.Contains(joined, "demoted to slave") {
		t.Fatalf("events = %s", joined)
	}
	// The pair works: progress and failover still function.
	if got := invoke(t, c, "add:x", 1); got != 6 {
		t.Fatalf("post-resolution add = %d", got)
	}
	s.CrashMaster()
	waitUntil(t, 5*time.Second, func() bool { return s.Master() == usurper }, "demoted replica cannot promote again")
	if got := invoke(t, c, "get:x", 0); got != 6 {
		t.Fatalf("state after post-resolution failover = %d", got)
	}
}

// rpcRequest builds an encoded request for protocol-level tests.
func rpcRequest(client string, seq uint64, op string, arg int64) any {
	return struct {
		ClientID string
		Seq      uint64
		Op       string
		Payload  []byte
	}{ClientID: client, Seq: seq, Op: op, Payload: EncodeArg(arg)}
}

// TestPeerRefusalIsNotDegraded pins the other half of the split-brain
// guard: when a live peer *answers* a checkpoint with the ErrNotSlave
// refusal (it is mid-takeover, or a second master), the send must not
// report ErrNoPeer. ErrNoPeer is the wave's degraded-mode trigger —
// replies release without any peer holding the state — which is only
// safe when the failure detector has declared the peer dead, not when
// it is provably alive and refusing.
func TestPeerRefusalIsNotDegraded(t *testing.T) {
	net := transport.NewMemNetwork(transport.WithSeed(7))
	master, err := net.Endpoint("m")
	if err != nil {
		t.Fatal(err)
	}
	refuser, err := net.Endpoint("r")
	if err != nil {
		t.Fatal(err)
	}
	refuser.Handle(KindReplica, func(ctx context.Context, p transport.Packet) ([]byte, error) {
		return nil, fmt.Errorf("%w: refusing checkpoint", ErrNotSlave)
	})

	p := newPeerContent(master, refuser.Addr(), "calc", "")
	_, err = p.Invoke(context.Background(), SvcSend,
		component.Message{Op: MsgPBRCheckpoint, Payload: []byte("ckpt")})
	if err == nil {
		t.Fatal("refused checkpoint reported success")
	}
	if errors.Is(err, ErrNoPeer) {
		t.Fatalf("refusal surfaced as ErrNoPeer (degraded mode): %v", err)
	}
	if !strings.Contains(err.Error(), "refused") {
		t.Errorf("refusal error = %v, want a peer-refused error", err)
	}

	// A genuinely unreachable peer still reports ErrNoPeer.
	if err := p.SetProperty("peer", "nowhere"); err != nil {
		t.Fatal(err)
	}
	_, err = p.Invoke(context.Background(), SvcSend,
		component.Message{Op: MsgPBRCheckpoint, Payload: []byte("ckpt")})
	if !errors.Is(err, ErrNoPeer) {
		t.Fatalf("dead peer error = %v, want ErrNoPeer", err)
	}
}
