package ftm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/host"
	"resilientft/internal/rpc"
	"resilientft/internal/stablestore"
	"resilientft/internal/transport"
)

// SystemConfig assembles a complete two-replica fault-tolerant system on
// a simulated network.
type SystemConfig struct {
	// System names the protected application.
	System string
	// Group is the replica group (shard) ID both replicas carry; empty
	// for a classic unsharded pair. ShardedSystem sets it per group.
	Group string
	// FTM is the initial mechanism.
	FTM core.ID
	// AppFactory builds one application instance per replica.
	AppFactory func() Application
	// Net is the network to attach to (a fresh seeded one when nil).
	Net *transport.MemNetwork
	// HostNames name the two hosts (default "alpha", "beta").
	HostNames [2]string
	// HeartbeatInterval and SuspectTimeout tune failover speed.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	// EventHook receives replica life-cycle events.
	EventHook func(hostName, event string)
	// StoreFactory supplies each host's stable store (default: a fresh
	// MemStore per host). The chaos engine hands out FaultStore wrappers
	// here so campaigns can slow or fill a live replica's storage.
	StoreFactory func(hostName string) stablestore.Store
}

// System is a running two-replica fault-tolerant application plus the
// harness around it (network, hosts, registry) used by tests, examples
// and the benchmark suite.
type System struct {
	Net      *transport.MemNetwork
	Registry *component.Registry

	mu       sync.Mutex
	cfg      SystemConfig
	hosts    [2]*host.Host
	replicas [2]*Replica
	clients  int
}

// NewSystem boots two hosts and deploys cfg.FTM with the master on the
// first host.
func NewSystem(ctx context.Context, cfg SystemConfig) (*System, error) {
	if cfg.System == "" {
		cfg.System = "app"
	}
	if cfg.AppFactory == nil {
		cfg.AppFactory = func() Application { return NewCalculator() }
	}
	if cfg.HostNames[0] == "" {
		cfg.HostNames = [2]string{"alpha", "beta"}
	}
	if cfg.Net == nil {
		cfg.Net = transport.NewMemNetwork(transport.WithSeed(1))
	}
	s := &System{Net: cfg.Net, Registry: NewRegistry(), cfg: cfg}

	for i, name := range cfg.HostNames {
		var hostOpts []host.Option
		if cfg.StoreFactory != nil {
			hostOpts = append(hostOpts, host.WithStore(cfg.StoreFactory(name)))
		}
		h, err := host.New(name, cfg.Net, s.Registry, hostOpts...)
		if err != nil {
			return nil, err
		}
		s.hosts[i] = h
	}
	roles := [2]core.Role{core.RoleMaster, core.RoleSlave}
	for i := range s.hosts {
		r, err := s.deployReplica(ctx, i, cfg.FTM, roles[i])
		if err != nil {
			return nil, err
		}
		s.replicas[i] = r
	}
	return s, nil
}

func (s *System) deployReplica(ctx context.Context, idx int, ftmID core.ID, role core.Role) (*Replica, error) {
	h := s.hosts[idx]
	peer := s.hosts[1-idx].Addr()
	if core.MustLookup(ftmID).Hosts < 2 {
		peer = ""
	}
	cfg := ReplicaConfig{
		System:            s.cfg.System,
		Group:             s.cfg.Group,
		FTM:               ftmID,
		Role:              role,
		Peer:              peer,
		App:               s.cfg.AppFactory(),
		HeartbeatInterval: s.cfg.HeartbeatInterval,
		SuspectTimeout:    s.cfg.SuspectTimeout,
	}
	var opts []ReplicaOption
	if s.cfg.EventHook != nil {
		hook := s.cfg.EventHook
		name := h.Name()
		opts = append(opts, WithEventHook(func(e string) { hook(name, e) }))
	}
	return NewReplica(ctx, h, cfg, opts...)
}

// Hosts returns the two hosts.
func (s *System) Hosts() [2]*host.Host {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hosts
}

// Replicas returns the two replicas (some may be dead after crashes).
func (s *System) Replicas() [2]*Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicas
}

// Master returns the current master replica, or nil.
func (s *System) Master() *Replica {
	for _, r := range s.Replicas() {
		if r != nil && !r.Host().Crashed() && r.Role() == core.RoleMaster {
			return r
		}
	}
	return nil
}

// Slave returns the current slave replica, or nil.
func (s *System) Slave() *Replica {
	for _, r := range s.Replicas() {
		if r != nil && !r.Host().Crashed() && r.Role() == core.RoleSlave {
			return r
		}
	}
	return nil
}

// Addresses returns the replica addresses, master first when known.
func (s *System) Addresses() []transport.Address {
	var out []transport.Address
	if m := s.Master(); m != nil {
		out = append(out, m.Host().Addr())
	}
	for _, r := range s.Replicas() {
		if r == nil {
			continue
		}
		addr := r.Host().Addr()
		dup := false
		for _, a := range out {
			if a == addr {
				dup = true
			}
		}
		if !dup {
			out = append(out, addr)
		}
	}
	return out
}

// NewClient attaches a new client to the system.
func (s *System) NewClient(opts ...rpc.ClientOption) (*rpc.Client, error) {
	s.mu.Lock()
	s.clients++
	id := fmt.Sprintf("client-%d", s.clients)
	s.mu.Unlock()
	ep, err := s.Net.Endpoint(transport.Address(id))
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(id, ep, s.Addresses(), opts...), nil
}

// CrashMaster crashes the current master's host and returns its index.
func (s *System) CrashMaster() int {
	m := s.Master()
	if m == nil {
		return -1
	}
	return s.crashReplica(m)
}

// CrashSlave crashes the current slave's host and returns its index.
func (s *System) CrashSlave() int {
	sl := s.Slave()
	if sl == nil {
		return -1
	}
	return s.crashReplica(sl)
}

func (s *System) crashReplica(r *Replica) int {
	s.mu.Lock()
	idx := -1
	for i, rep := range s.replicas {
		if rep == r {
			idx = i
		}
	}
	s.mu.Unlock()
	r.Host().Crash()
	return idx
}

// RestartReplica restarts a crashed host and redeploys its replica as a
// slave of the surviving master, in the FTM committed to stable storage,
// then pulls a checkpoint when the configuration supports it — the
// recovery-of-adaptation path (§5.3).
func (s *System) RestartReplica(ctx context.Context, idx int) (*Replica, error) {
	s.mu.Lock()
	h := s.hosts[idx]
	system := s.cfg.System
	s.mu.Unlock()

	// The surviving replica may have committed a newer configuration; a
	// real deployment reads the shared stable store. Capture the
	// survivor's FTM before the restart makes the stale replica object
	// on this host look alive again.
	var survivorFTM core.ID
	if m := s.Master(); m != nil && m.Host() != h {
		survivorFTM = m.FTM()
	}

	if err := h.Restart(); err != nil {
		return nil, err
	}
	rec, ok, err := h.Store().Current(system)
	if err != nil {
		return nil, err
	}
	ftmID := s.cfg.FTM
	if ok {
		ftmID = core.ID(rec.FTM)
	}
	if survivorFTM != "" {
		ftmID = survivorFTM
	}
	r, err := s.deployReplica(ctx, idx, ftmID, core.RoleSlave)
	if err != nil {
		return nil, err
	}
	// State transfer from the survivor. The pull is served by the peer
	// protocol's fixed state and reply-log features, so it works under
	// every mechanism — NeedsStateAccess describes the steady-state
	// replication style, not the recovery path. Rejoining blind under a
	// no-state-access FTM (determinism only replays what a process has
	// seen, and a restarted one has seen nothing) loses both the
	// application state and the reply log, so a later failover would
	// re-execute acknowledged writes.
	if peer := s.Replicas()[1-idx]; peer != nil && !peer.Host().Crashed() {
		if err := r.SyncFromPeer(ctx); err != nil {
			return nil, fmt.Errorf("ftm: rejoin sync: %w", err)
		}
	}
	s.mu.Lock()
	s.replicas[idx] = r
	peer := s.replicas[1-idx]
	s.mu.Unlock()

	// The restart may have produced a masterless pair: if the master
	// crashed and was restarted before the slave's failure detector
	// accrued enough silence to suspect it (a fast supervisor restart),
	// no suspicion edge ever fires and both replicas sit as slaves
	// forever — every recovery path downstream of the detector is
	// edge-triggered. Mint exactly one master here: the surviving
	// replica, whose state is authoritative, or this one when it is
	// alone. Promote is idempotent, so racing an in-flight
	// detector-driven promotion is safe, and a double promotion resolves
	// through the split-brain check Promote runs on completion.
	if s.Master() == nil {
		candidate := r
		if peer != nil && !peer.Host().Crashed() {
			candidate = peer
		}
		if err := candidate.Promote(ctx); err != nil {
			return nil, fmt.Errorf("ftm: masterless restart: promoting %s: %w",
				candidate.Host().Name(), err)
		}
	}
	return r, nil
}

// Shutdown crashes both hosts, silencing all background activity.
func (s *System) Shutdown() {
	for _, h := range s.Hosts() {
		if h != nil && !h.Crashed() {
			h.Crash()
		}
	}
}
