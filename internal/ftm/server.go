package ftm

import (
	"context"
	"errors"
	"fmt"

	"resilientft/internal/appstate"
	"resilientft/internal/component"
	"resilientft/internal/rpc"
)

// versionedCapture pairs a full state capture with the version it
// represents (zero for managers without delta support).
type versionedCapture struct {
	Data    []byte
	Version uint64
}

// deltaCaptureResult is the OpCaptureDelta reply payload. Supported is
// false when the application's state manager has no delta tracking; OK
// is false when the tracker cannot serve the requested base. Either way
// the caller must ship a full checkpoint.
type deltaCaptureResult struct {
	Supported bool
	OK        bool
	Delta     []byte
	To        uint64
}

// deltaApplyResult is the OpApplyDelta reply payload. BaseMismatch
// signals the resync condition (not an error: the sender falls back to a
// full checkpoint).
type deltaApplyResult struct {
	Version      uint64
	BaseMismatch bool
}

// TypeServer is the component type of the application server.
const TypeServer = "ftm.server"

// serverContent hosts the Application inside the FTM composite (the
// "server" component of Figure 6). It exposes three services: process
// (computation), state (capture/restore/access) and assert (the safety
// assertion hook).
type serverContent struct {
	app Application
}

// newServerContent builds the server around an application.
func newServerContent(app Application) *serverContent {
	return &serverContent{app: app}
}

var _ component.Content = (*serverContent)(nil)

func (s *serverContent) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	switch service {
	case SvcProcess:
		return s.process(msg)
	case SvcState:
		return s.state(msg)
	case SvcAssert:
		return s.assert(msg)
	case SvcAlternate:
		return s.alternate(msg)
	case SvcRecord:
		return s.record(msg)
	case SvcReplay:
		return s.replay(msg)
	default:
		return component.Message{}, fmt.Errorf("%w: service %q on server", component.ErrNotFound, service)
	}
}

// DecisionRecorder is implemented by applications whose non-deterministic
// decisions can be captured on one replica and replayed on another
// (semi-active replication, Delta-4 XPA style).
type DecisionRecorder interface {
	// ProcessRecording executes op, returning the captured decisions.
	ProcessRecording(op string, arg int64) (result, before int64, decisions []int64, err error)
	// ProcessReplaying executes op consuming captured decisions.
	ProcessReplaying(op string, arg int64, decisions []int64) (result, before int64, err error)
}

func (s *serverContent) record(msg component.Message) (component.Message, error) {
	rec, ok := s.app.(DecisionRecorder)
	if !ok {
		return component.Message{}, fmt.Errorf("ftm: application %T cannot record decisions", s.app)
	}
	call, ok := msg.Payload.(*Call)
	if !ok {
		return component.Message{}, fmt.Errorf("ftm: server.record payload is %T, want *Call", msg.Payload)
	}
	result, before, decisions, err := rec.ProcessRecording(call.Req.Op, decodeArg(call.Req.Payload))
	if err != nil {
		call.Result = rpc.Response{ClientID: call.Req.ClientID, Seq: call.Req.Seq,
			Status: rpc.StatusAppError, Err: err.Error()}
		return component.NewMessage("done", call), nil
	}
	call.Before = before
	call.Decisions = decisions
	call.Result = rpc.Response{ClientID: call.Req.ClientID, Seq: call.Req.Seq,
		Status: rpc.StatusOK, Payload: EncodeResult(result)}
	return component.NewMessage("done", call), nil
}

func (s *serverContent) replay(msg component.Message) (component.Message, error) {
	rec, ok := s.app.(DecisionRecorder)
	if !ok {
		return component.Message{}, fmt.Errorf("ftm: application %T cannot replay decisions", s.app)
	}
	call, ok := msg.Payload.(*Call)
	if !ok {
		return component.Message{}, fmt.Errorf("ftm: server.replay payload is %T, want *Call", msg.Payload)
	}
	result, before, err := rec.ProcessReplaying(call.Req.Op, decodeArg(call.Req.Payload), call.Decisions)
	if err != nil {
		call.Result = rpc.Response{ClientID: call.Req.ClientID, Seq: call.Req.Seq,
			Status: rpc.StatusAppError, Err: err.Error()}
		return component.NewMessage("done", call), nil
	}
	call.Before = before
	call.Result = rpc.Response{ClientID: call.Req.ClientID, Seq: call.Req.Seq,
		Status: rpc.StatusOK, Payload: EncodeResult(result)}
	return component.NewMessage("done", call), nil
}

// AlternateProvider is implemented by applications shipping a
// diversified secondary variant of their computation (recovery blocks).
type AlternateProvider interface {
	// ProcessAlternate executes op through the alternate implementation.
	ProcessAlternate(op string, arg int64) (result int64, before int64, err error)
}

func (s *serverContent) alternate(msg component.Message) (component.Message, error) {
	alt, ok := s.app.(AlternateProvider)
	if !ok {
		return component.Message{}, fmt.Errorf("ftm: application %T provides no diversified alternate", s.app)
	}
	call, ok := msg.Payload.(*Call)
	if !ok {
		return component.Message{}, fmt.Errorf("ftm: server.alternate payload is %T, want *Call", msg.Payload)
	}
	result, before, err := alt.ProcessAlternate(call.Req.Op, decodeArg(call.Req.Payload))
	if err != nil {
		call.Result = rpc.Response{
			ClientID: call.Req.ClientID,
			Seq:      call.Req.Seq,
			Status:   rpc.StatusAppError,
			Err:      err.Error(),
		}
		return component.NewMessage("done", call), nil
	}
	call.Before = before
	call.Result = rpc.Response{
		ClientID: call.Req.ClientID,
		Seq:      call.Req.Seq,
		Status:   rpc.StatusOK,
		Payload:  EncodeResult(result),
	}
	return component.NewMessage("done", call), nil
}

func (s *serverContent) process(msg component.Message) (component.Message, error) {
	call, ok := msg.Payload.(*Call)
	if !ok {
		return component.Message{}, fmt.Errorf("ftm: server.process payload is %T, want *Call", msg.Payload)
	}
	result, before, err := s.app.Process(call.Req.Op, decodeArg(call.Req.Payload))
	if err != nil {
		call.Result = rpc.Response{
			ClientID: call.Req.ClientID,
			Seq:      call.Req.Seq,
			Status:   rpc.StatusAppError,
			Err:      err.Error(),
		}
		return component.NewMessage("done", call), nil
	}
	call.Before = before
	call.Result = rpc.Response{
		ClientID: call.Req.ClientID,
		Seq:      call.Req.Seq,
		Status:   rpc.StatusOK,
		Payload:  EncodeResult(result),
	}
	return component.NewMessage("done", call), nil
}

func (s *serverContent) state(msg component.Message) (component.Message, error) {
	mgr := s.app.StateManager()
	switch msg.Op {
	case OpAccess:
		_, err := mgr.CaptureState()
		return component.NewMessage("ok", err == nil), nil
	case OpCapture:
		data, err := mgr.CaptureState()
		if err != nil {
			return component.Message{}, fmt.Errorf("ftm: capture: %w", err)
		}
		return component.NewMessage("ok", data), nil
	case OpRestoreState:
		data, ok := msg.Payload.([]byte)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: server.state restore payload is %T", msg.Payload)
		}
		if err := mgr.RestoreState(data); err != nil {
			return component.Message{}, fmt.Errorf("ftm: restore: %w", err)
		}
		return component.NewMessage("ok", nil), nil
	case OpCaptureVersioned:
		if dc, ok := mgr.(appstate.DeltaCapturer); ok {
			data, version, err := dc.CaptureVersioned()
			if err != nil {
				return component.Message{}, fmt.Errorf("ftm: capture: %w", err)
			}
			return component.NewMessage("ok", versionedCapture{Data: data, Version: version}), nil
		}
		data, err := mgr.CaptureState()
		if err != nil {
			return component.Message{}, fmt.Errorf("ftm: capture: %w", err)
		}
		return component.NewMessage("ok", versionedCapture{Data: data}), nil
	case OpCaptureDelta:
		base, ok := msg.Payload.(uint64)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: server.state capture-delta payload is %T", msg.Payload)
		}
		dc, ok := mgr.(appstate.DeltaCapturer)
		if !ok {
			return component.NewMessage("ok", deltaCaptureResult{}), nil
		}
		delta, to, capOK, err := dc.CaptureDelta(base)
		if err != nil {
			return component.Message{}, fmt.Errorf("ftm: capture delta: %w", err)
		}
		return component.NewMessage("ok", deltaCaptureResult{Supported: true, OK: capOK, Delta: delta, To: to}), nil
	case OpApplyDelta:
		data, ok := msg.Payload.([]byte)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: server.state apply-delta payload is %T", msg.Payload)
		}
		dc, ok := mgr.(appstate.DeltaCapturer)
		if !ok {
			// A manager that cannot track deltas cannot apply one either:
			// report the mismatch so the sender resyncs with a full
			// checkpoint.
			return component.NewMessage("ok", deltaApplyResult{BaseMismatch: true}), nil
		}
		version, err := dc.ApplyDelta(data)
		if errors.Is(err, appstate.ErrDeltaBase) {
			return component.NewMessage("ok", deltaApplyResult{Version: version, BaseMismatch: true}), nil
		}
		if err != nil {
			return component.Message{}, fmt.Errorf("ftm: apply delta: %w", err)
		}
		return component.NewMessage("ok", deltaApplyResult{Version: version}), nil
	case OpApplyFull:
		vc, ok := msg.Payload.(versionedCapture)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: server.state apply-full payload is %T", msg.Payload)
		}
		if dc, ok := mgr.(appstate.DeltaCapturer); ok {
			if err := dc.ApplyFull(vc.Data, vc.Version); err != nil {
				return component.Message{}, fmt.Errorf("ftm: apply full: %w", err)
			}
			return component.NewMessage("ok", nil), nil
		}
		if err := mgr.RestoreState(vc.Data); err != nil {
			return component.Message{}, fmt.Errorf("ftm: apply full: %w", err)
		}
		return component.NewMessage("ok", nil), nil
	default:
		return component.Message{}, fmt.Errorf("%w: %q on server.state", component.ErrUnknownOp, msg.Op)
	}
}

func (s *serverContent) assert(msg component.Message) (component.Message, error) {
	call, ok := msg.Payload.(*Call)
	if !ok {
		return component.Message{}, fmt.Errorf("ftm: server.assert payload is %T, want *Call", msg.Payload)
	}
	if call.Result.Status != rpc.StatusOK {
		// Application errors are deterministic outcomes, not value
		// faults; the assertion does not apply.
		return component.NewMessage("ok", true), nil
	}
	result, err := call.ResultValue()
	if err != nil {
		return component.NewMessage("ok", false), nil
	}
	ok = s.app.Assert(call.Req.Op, decodeArg(call.Req.Payload), call.Before, result)
	return component.NewMessage("ok", ok), nil
}

// decodeArg decodes the request's int64 argument (0 when absent).
func decodeArg(payload []byte) int64 {
	v, err := DecodeResult(payload)
	if err != nil {
		return 0
	}
	return v
}

// EncodeArg serializes a request argument.
func EncodeArg(v int64) []byte { return EncodeResult(v) }
