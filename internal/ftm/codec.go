package ftm

import (
	"encoding/binary"
	"fmt"
)

// EncodeResult serializes an int64 application result.
func EncodeResult(v int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	return buf[:]
}

// DecodeResult deserializes an int64 application result.
func DecodeResult(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("ftm: result payload has %d bytes, want 8", len(b))
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}
