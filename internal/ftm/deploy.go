package ftm

import (
	"context"
	"fmt"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/host"
	"resilientft/internal/transport"
)

// ReplicaConfig describes one replica of a fault-tolerant application.
type ReplicaConfig struct {
	// System names the protected application; it is also the composite
	// path on the host and the key under which configurations are
	// committed to stable storage.
	System string
	// Group is the replica group (shard) this replica belongs to, empty
	// in unsharded deployments. It is stamped on every rpc request and
	// inter-replica envelope of the group, and it keys the dispatch when
	// several groups share one endpoint.
	Group string
	// FTM selects the mechanism to deploy.
	FTM core.ID
	// Role is this replica's initial role.
	Role core.Role
	// Peer is the other replica's address (empty for single-host FTMs).
	Peer transport.Address
	// Members is the full ordered membership of a multi-replica group
	// (index 0 = initial master); empty for classic duplex pairs. With
	// members set, a master broadcasts to every other member and backups
	// promote with rank-staggered delays (the paper's "multiple Backups
	// or Followers" variant).
	Members []transport.Address
	// App is the protected application.
	App Application
	// Retention bounds the reply log (responses per client).
	Retention int
	// HeartbeatInterval and SuspectTimeout tune the failure detector.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
}

func (cfg ReplicaConfig) validate() error {
	if cfg.System == "" {
		return fmt.Errorf("ftm: replica config without system name")
	}
	// The system name becomes the composite path and appears verbatim in
	// generated transition scripts, whose words admit only letters,
	// digits, '_' and '-'; anything else (notably '.', the fscript
	// member separator) would make every later promotion fail. Reject it
	// at deploy time instead.
	for _, c := range cfg.System {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return fmt.Errorf("ftm: system name %q: character %q not allowed in a component path", cfg.System, c)
		}
	}
	if cfg.App == nil {
		return fmt.Errorf("ftm: replica config without application")
	}
	if _, err := core.Lookup(cfg.FTM); err != nil {
		return err
	}
	if cfg.Role != core.RoleMaster && cfg.Role != core.RoleSlave {
		return fmt.Errorf("ftm: bad role %q", cfg.Role)
	}
	return nil
}

// wireDeclaredRefs wires every declared reference of the component at
// path according to the static wiring plan, skipping targets that do not
// exist in this composite (e.g. no peer on single-host FTMs).
func wireDeclaredRefs(rt *component.Runtime, compositePath, name string) error {
	path := compositePath + "/" + name
	c, err := rt.Lookup(path)
	if err != nil {
		return err
	}
	for _, ref := range c.Definition().References {
		target, ok := refTarget[ref.Name]
		if !ok {
			return fmt.Errorf("ftm: no wiring plan for reference %q of %s", ref.Name, path)
		}
		targetPath := compositePath + "/" + target[0]
		if !rt.Exists(targetPath) {
			if ref.Required {
				return fmt.Errorf("ftm: required reference %q of %s targets missing %s", ref.Name, path, targetPath)
			}
			continue
		}
		if err := rt.Wire(path, ref.Name, targetPath, target[1]); err != nil {
			return err
		}
	}
	return nil
}

// DeployFTM assembles a complete FTM composite on a host: every
// component is deployed from its bundle through the host's registry
// (bundle verification + linking — the full-deployment cost of Table 3),
// wired per the Figure 6 architecture, promoted and started. control
// receives the protocol's escalations. It returns the composite path.
func DeployFTM(ctx context.Context, h *host.Host, cfg ReplicaConfig, control Control) (string, error) {
	if err := cfg.validate(); err != nil {
		return "", err
	}
	rt := h.Runtime()
	if rt == nil {
		return "", host.ErrCrashed
	}
	desc := core.MustLookup(cfg.FTM)
	scheme := desc.Scheme(cfg.Role)
	path := cfg.System

	if _, err := rt.AddComposite(path); err != nil {
		return "", err
	}

	retention := cfg.Retention
	if retention <= 0 {
		retention = 64
	}

	// Resolve the peer set: classic duplex pairs unicast to their single
	// peer; multi-replica masters broadcast to every other member while
	// backups talk to (and watch) the master.
	peerList := []string{string(cfg.Peer)}
	watch := string(cfg.Peer)
	if len(cfg.Members) > 0 {
		if cfg.Role == core.RoleMaster {
			peerList = peerList[:0]
			for _, m := range cfg.Members {
				if m != h.Addr() {
					peerList = append(peerList, string(m))
				}
			}
			if len(peerList) > 0 {
				watch = peerList[0]
			}
		} else {
			master := cfg.Peer
			if master == "" {
				master = cfg.Members[0]
			}
			peerList = []string{string(master)}
			watch = string(master)
		}
	}

	// Infrastructure components (the stable common parts).
	infra := []struct {
		typ   string
		props map[string]any
		skip  bool
	}{
		{typ: TypeProtocol, props: map[string]any{
			"system": cfg.System, "role": string(cfg.Role), "control": control,
		}},
		{typ: TypeReplyLog, props: map[string]any{"retention": retention}},
		{typ: TypeServer, props: map[string]any{"app": cfg.App}},
		{typ: TypePeer, props: map[string]any{
			"endpoint": h.Endpoint(), "peers": peerList, "system": cfg.System,
			"group": cfg.Group,
		}, skip: desc.Hosts < 2},
		{typ: TypeDetector, props: map[string]any{
			"endpoint": h.Endpoint(), "peer": watch, "crash": h.CrashSwitch(),
			"interval": cfg.HeartbeatInterval, "timeout": cfg.SuspectTimeout,
			"health": h.Health(),
		}, skip: desc.Hosts < 2},
	}
	for _, item := range infra {
		if item.skip {
			continue
		}
		def, err := infraDefinition(item.typ)
		if err != nil {
			return "", err
		}
		def.Properties = item.props
		if _, err := rt.AddComponent(path, def); err != nil {
			return "", err
		}
	}

	// Variable-feature bricks per the FTM's Table 2 scheme.
	slots := scheme.Slots()
	for _, slot := range []string{core.SlotBefore, core.SlotProceed, core.SlotAfter} {
		typ := slots[slot]
		if typ == "" {
			return "", fmt.Errorf("ftm: %s has no %s brick for role %s", cfg.FTM, slot, cfg.Role)
		}
		def, err := brickDefinition(typ)
		if err != nil {
			return "", err
		}
		def.Name = slot
		if _, err := rt.AddComponent(path, def); err != nil {
			return "", err
		}
	}

	// Wiring per the static plan.
	names := []string{NameProtocol, NameReplyLog, NameServer, core.SlotBefore, core.SlotProceed, core.SlotAfter}
	if desc.Hosts >= 2 {
		names = append(names, NamePeer, NameDetector)
	}
	for _, name := range names {
		if err := wireDeclaredRefs(rt, path, name); err != nil {
			return "", err
		}
	}

	// Boundary promotions: the composite's external services.
	cp, err := rt.LookupComposite(path)
	if err != nil {
		return "", err
	}
	if err := cp.Promote(SvcRequest, NameProtocol, SvcRequest); err != nil {
		return "", err
	}
	if err := cp.Promote(SvcReplica, NameProtocol, SvcReplica); err != nil {
		return "", err
	}

	// Start everything, integrity-check, open the boundary.
	for _, name := range names {
		if err := rt.Start(ctx, path+"/"+name); err != nil {
			return "", err
		}
	}
	if violations := rt.CheckIntegrity(); len(violations) > 0 {
		return "", fmt.Errorf("%w: %v", component.ErrIntegrity, violations)
	}
	if err := rt.Start(ctx, path); err != nil {
		return "", err
	}
	return path, nil
}
