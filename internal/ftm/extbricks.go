package ftm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"resilientft/internal/component"
	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

// This file implements the extension bricks of §3.2.1: recovery blocks
// and temporal TMR. Both demonstrate the paper's claim that the Lego
// approach upgrades a technique without changing its execution logic —
// the RB acceptance test and the TMR decision algorithm are component
// properties, changed by an intra-FTM `set` reconfiguration.

// Acceptance-test modes of the RB brick.
const (
	// AcceptInverse uses the application's safety assertion (the inverse
	// check derived from the safety analysis).
	AcceptInverse = "inverse"
	// AcceptRange accepts results whose magnitude stays under a bound;
	// the property value is "range:<bound>".
	AcceptRange = "range"
	// AcceptNone accepts everything (a deliberately weak test, for
	// demonstrating acceptance-test upgrades).
	AcceptNone = "none"
)

// rbProceed is the recovery-blocks Proceed: run the primary variant,
// check the acceptance test, and on rejection roll the state back and
// run the diversified alternate ("ensure acceptance by primary else by
// alternate else error"). Changing the acceptance test is a property
// update.
type rbProceed struct {
	brickRefs
	mu         sync.Mutex
	acceptance string
}

var (
	_ component.Content          = (*rbProceed)(nil)
	_ component.PropertyReceiver = (*rbProceed)(nil)
)

func (p *rbProceed) SetProperty(name string, value any) error {
	if name != "acceptance" {
		return nil
	}
	s, ok := value.(string)
	if !ok {
		return fmt.Errorf("ftm: rb acceptance property is %T", value)
	}
	mode := strings.SplitN(s, ":", 2)[0]
	switch mode {
	case AcceptInverse, AcceptNone:
	case AcceptRange:
		if _, err := parseRangeBound(s); err != nil {
			return err
		}
	default:
		return fmt.Errorf("ftm: unknown acceptance test %q", s)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.acceptance = s
	return nil
}

func parseRangeBound(spec string) (int64, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("ftm: range acceptance needs a bound: %q", spec)
	}
	bound, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ftm: range acceptance bound %q: %w", parts[1], err)
	}
	return bound, nil
}

// accept evaluates the configured acceptance test on the call's result.
func (p *rbProceed) accept(ctx context.Context, call *Call) (bool, error) {
	p.mu.Lock()
	spec := p.acceptance
	p.mu.Unlock()
	if spec == "" {
		spec = AcceptInverse
	}
	switch strings.SplitN(spec, ":", 2)[0] {
	case AcceptNone:
		return true, nil
	case AcceptRange:
		bound, err := parseRangeBound(spec)
		if err != nil {
			return false, err
		}
		v, err := call.ResultValue()
		if err != nil {
			return false, nil
		}
		if v < 0 {
			v = -v
		}
		return v <= bound, nil
	default: // AcceptInverse
		return (assertClient{svc: p.ref("assert")}).check(ctx, call)
	}
}

func (p *rbProceed) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	server := processClient{svc: p.ref("server")}
	alternate := processClient{svc: p.ref("alternate")}
	state := stateClient{svc: p.ref("state")}

	// Establish the recovery point.
	snap, err := state.capture(ctx)
	if err != nil {
		return component.Message{}, fmt.Errorf("ftm: rb: recovery point: %w", err)
	}

	// Primary variant.
	if err := server.run(ctx, call); err != nil {
		return component.Message{}, err
	}
	if call.Result.Status == rpc.StatusOK {
		ok, err := p.accept(ctx, call)
		if err != nil {
			return component.Message{}, err
		}
		if ok {
			return component.NewMessage("ok", call), nil
		}
	}

	// Roll back and try the diversified alternate.
	if err := state.restore(ctx, snap); err != nil {
		return component.Message{}, fmt.Errorf("ftm: rb: rollback: %w", err)
	}
	if err := alternate.run(ctx, call); err != nil {
		return component.Message{}, err
	}
	if call.Result.Status == rpc.StatusOK {
		ok, err := p.accept(ctx, call)
		if err != nil {
			return component.Message{}, err
		}
		if ok {
			return component.NewMessage("ok", call), nil
		}
	}

	// Both variants rejected: restore the recovery point and give up.
	if err := state.restore(ctx, snap); err != nil {
		return component.Message{}, fmt.Errorf("ftm: rb: final rollback: %w", err)
	}
	call.Unrecoverable = true
	return component.Message{}, fmt.Errorf("%w: request %s rejected by both variants", ErrUnrecoverable, call.Req.ID())
}

// Decision algorithms of the temporal-TMR brick.
const (
	// DecideMajority requires two matching results out of three.
	DecideMajority = "majority"
	// DecideUnanimous requires all three results to match.
	DecideUnanimous = "unanimous"
	// DecideMedian returns the median result — it still produces an
	// answer when all three executions disagree (the coverage upgrade a
	// decider replacement buys).
	DecideMedian = "median"
)

// tmrProceed is the temporal-TMR Proceed: three executions with state
// restored between them, then a pluggable decision algorithm over the
// three results. Replacing the decider is a property update.
type tmrProceed struct {
	brickRefs
	mu      sync.Mutex
	decider string
}

var (
	_ component.Content          = (*tmrProceed)(nil)
	_ component.PropertyReceiver = (*tmrProceed)(nil)
)

func (p *tmrProceed) SetProperty(name string, value any) error {
	if name != "decider" {
		return nil
	}
	s, ok := value.(string)
	if !ok {
		return fmt.Errorf("ftm: tmr decider property is %T", value)
	}
	switch s {
	case DecideMajority, DecideUnanimous, DecideMedian:
	default:
		return fmt.Errorf("ftm: unknown decision algorithm %q", s)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.decider = s
	return nil
}

func (p *tmrProceed) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	server := processClient{svc: p.ref("server")}
	state := stateClient{svc: p.ref("state")}

	snap := call.StateSnapshot
	if !call.HasSnapshot {
		snap, err = state.capture(ctx)
		if err != nil {
			return component.Message{}, fmt.Errorf("ftm: tmr: pre-capture: %w", err)
		}
	}

	results := make([]rpc.Response, 0, 3)
	for i := 0; i < 3; i++ {
		if i > 0 {
			if err := state.restore(ctx, snap); err != nil {
				return component.Message{}, fmt.Errorf("ftm: tmr: restore before execution %d: %w", i+1, err)
			}
		}
		if err := server.run(ctx, call); err != nil {
			return component.Message{}, err
		}
		results = append(results, call.Result)
	}

	p.mu.Lock()
	decider := p.decider
	p.mu.Unlock()
	if decider == "" {
		decider = DecideMajority
	}
	decided, ok := decide(decider, results)
	if !ok {
		call.Unrecoverable = true
		return component.Message{}, fmt.Errorf("%w: %s decider found no agreement for %s",
			ErrUnrecoverable, decider, call.Req.ID())
	}
	call.Result = decided
	return component.NewMessage("ok", call), nil
}

// --- Semi-active replication (Delta-4 XPA) bricks ---------------------------

// xpaMsg ships a request plus the leader's captured decisions (and its
// result, for divergence auditing) to the follower.
type xpaMsg struct {
	Req       rpc.Request
	Decisions []int64
	Result    rpc.Response
}

// recordProceed is the semi-active leader's Proceed: compute through the
// decision-capturing path so non-deterministic choices land in the call.
type recordProceed struct {
	brickRefs
}

func (p *recordProceed) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	if err := (processClient{svc: p.ref("record")}).run(ctx, call); err != nil {
		return component.Message{}, err
	}
	return component.NewMessage("ok", call), nil
}

// xpaNotify is the semi-active leader's After: ship the request, the
// captured decisions and the result to the follower for replay.
type xpaNotify struct {
	brickRefs
}

func (a *xpaNotify) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	if msg.Op == OpFlush {
		// XPA replays need the leader's captured decisions, which a bare
		// logged reply no longer carries — re-shipping is impossible, so
		// a replayed reply is released as-is (pre-group-commit behavior).
		return component.NewMessage("ok", nil), nil
	}
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	data, err := transport.Encode(xpaMsg{Req: call.Req, Decisions: call.Decisions, Result: call.Result})
	if err != nil {
		return component.Message{}, err
	}
	if _, err := (peerClient{svc: a.ref("peer")}).call(ctx, MsgXPAExec, data); err != nil {
		if errors.Is(err, ErrNoPeer) {
			return component.NewMessage("degraded", call), nil
		}
		return component.Message{}, err
	}
	return component.NewMessage("ok", call), nil
}

// xpaApply is the semi-active follower's After: replay the leader's
// execution with its decisions and log the reply.
type xpaApply struct {
	brickRefs
}

func (a *xpaApply) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	switch msg.Op {
	case OpRun:
		return component.NewMessage("ok", msg.Payload), nil
	case "xpa.exec":
		m, ok := msg.Payload.(xpaMsg)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: xpa payload is %T", msg.Payload)
		}
		log := logClient{svc: a.ref("log")}
		if _, found, err := log.lookup(ctx, m.Req.ClientID, m.Req.Seq); err == nil && found {
			return component.NewMessage("ok", nil), nil
		}
		call := &Call{Req: m.Req, Decisions: m.Decisions}
		if err := (processClient{svc: a.ref("replay")}).run(ctx, call); err != nil {
			return component.Message{}, err
		}
		if !sameOutcome(call.Result, m.Result) {
			// Replay divergence means the decision capture is incomplete
			// for this operation — surface it rather than logging a
			// reply that contradicts the leader's.
			return component.Message{}, fmt.Errorf("%w: xpa replay diverged for %s",
				ErrUnrecoverable, m.Req.ID())
		}
		if err := log.record(ctx, &call.Result); err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", nil), nil
	default:
		return component.Message{}, fmt.Errorf("%w: %q on xpa.apply", component.ErrUnknownOp, msg.Op)
	}
}

// decide applies a decision algorithm over three results.
func decide(algorithm string, results []rpc.Response) (rpc.Response, bool) {
	switch algorithm {
	case DecideUnanimous:
		if sameOutcome(results[0], results[1]) && sameOutcome(results[1], results[2]) {
			return results[0], true
		}
		return rpc.Response{}, false
	case DecideMedian:
		// Median over the numeric payloads of successful results; the
		// final state corresponds to the last execution, which the
		// single-transient-fault assumption leaves clean or voted-out.
		type pair struct {
			v int64
			r rpc.Response
		}
		var pairs []pair
		for _, r := range results {
			if r.Status != rpc.StatusOK {
				continue
			}
			v, err := DecodeResult(r.Payload)
			if err != nil {
				continue
			}
			pairs = append(pairs, pair{v: v, r: r})
		}
		if len(pairs) < 2 {
			return rpc.Response{}, false
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		return pairs[len(pairs)/2].r, true
	default: // DecideMajority
		for i := 0; i < len(results); i++ {
			matches := 0
			for j := 0; j < len(results); j++ {
				if sameOutcome(results[i], results[j]) {
					matches++
				}
			}
			if matches >= 2 {
				return results[i], true
			}
		}
		return rpc.Response{}, false
	}
}
