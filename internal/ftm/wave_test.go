package ftm

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
)

func TestWaveJoinAccumulatesMembers(t *testing.T) {
	n := newWaveNotifier(0)
	w1 := n.join(3, nil, telemetry.SpanContext{})
	w2 := n.join(7, &rpc.Response{Seq: 7}, telemetry.SpanContext{})
	if w1 != w2 {
		t.Fatal("two joins with an open wave should share it")
	}
	if w1.members != 2 {
		t.Fatalf("members = %d, want 2", w1.members)
	}
	if w1.maxSeq != 7 {
		t.Fatalf("maxSeq = %d, want 7", w1.maxSeq)
	}
	if len(w1.resps) != 1 || w1.resps[0].Seq != 7 {
		t.Fatalf("resps = %+v, want one response with seq 7", w1.resps)
	}
}

func TestWaveMaxWaveCapOpensNewWave(t *testing.T) {
	n := newWaveNotifier(2)
	w1 := n.join(1, nil, telemetry.SpanContext{})
	n.join(2, nil, telemetry.SpanContext{})
	w3 := n.join(3, nil, telemetry.SpanContext{})
	if w1 == w3 {
		t.Fatal("third join should overflow into a fresh wave (maxWave=2)")
	}
	if w1.members != 2 || w3.members != 1 {
		t.Fatalf("members = %d/%d, want 2/1", w1.members, w3.members)
	}
}

func TestWaveDetachMergesWholeWavesUpToCap(t *testing.T) {
	n := newWaveNotifier(3)
	n.join(1, nil, telemetry.SpanContext{})
	n.join(2, nil, telemetry.SpanContext{})
	n.join(3, nil, telemetry.SpanContext{}) // fills wave 1
	n.join(4, nil, telemetry.SpanContext{}) // wave 2
	batch := n.detach()
	if len(batch) != 1 {
		t.Fatalf("detach took %d waves, want 1 (merging wave 2 would exceed the cap)", len(batch))
	}
	if batch[0].members != 3 {
		t.Fatalf("detached members = %d, want 3", batch[0].members)
	}
	rest := n.detach()
	if len(rest) != 1 || rest[0].members != 1 {
		t.Fatalf("second detach = %+v, want the one-member second wave", rest)
	}
	if n.detach() != nil {
		t.Fatal("third detach should find an empty queue")
	}
}

func TestWaveDetachAlwaysTakesAtLeastOneWave(t *testing.T) {
	n := newWaveNotifier(0)
	for i := 0; i < 5; i++ {
		n.join(uint64(i), nil, telemetry.SpanContext{})
	}
	n.setMaxWave(1) // cap lowered below the open wave's size
	batch := n.detach()
	if len(batch) != 1 || batch[0].members != 5 {
		t.Fatalf("detach = %+v, want the full 5-member wave despite the lowered cap", batch)
	}
}

func TestWaveRideShipsOwnWave(t *testing.T) {
	n := newWaveNotifier(0)
	w := n.join(1, nil, telemetry.SpanContext{})
	var ships atomic.Int32
	outcome, err := n.ride(context.Background(), w, func(batch []*commitWave) (string, error) {
		ships.Add(1)
		if len(batch) != 1 || batch[0] != w {
			t.Errorf("batch = %+v, want exactly the rider's wave", batch)
		}
		return "ok", nil
	})
	if err != nil || outcome != "ok" {
		t.Fatalf("ride = %q, %v", outcome, err)
	}
	if ships.Load() != 1 {
		t.Fatalf("ships = %d, want 1", ships.Load())
	}
}

func TestWaveRidePropagatesShipError(t *testing.T) {
	n := newWaveNotifier(0)
	w := n.join(1, nil, telemetry.SpanContext{})
	boom := errors.New("ship sank")
	_, err := n.ride(context.Background(), w, func([]*commitWave) (string, error) {
		return "", boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the ship error", err)
	}
}

func TestWaveLeaderCoversWaiters(t *testing.T) {
	// Many concurrent riders, a slow ship: far fewer ships than riders
	// must be enough to release everyone — that is the whole point of
	// group commit.
	n := newWaveNotifier(0)
	const riders = 32
	var ships atomic.Int32
	var covered atomic.Int32
	ship := func(batch []*commitWave) (string, error) {
		ships.Add(1)
		time.Sleep(5 * time.Millisecond) // let waiters pile up
		for _, w := range batch {
			covered.Add(int32(w.members))
		}
		return "ok", nil
	}
	var wg sync.WaitGroup
	errs := make([]error, riders)
	for i := 0; i < riders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := n.join(uint64(i), nil, telemetry.SpanContext{})
			outcome, err := n.ride(context.Background(), w, ship)
			if err == nil && outcome != "ok" {
				err = errors.New("outcome " + outcome)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rider %d: %v", i, err)
		}
	}
	if got := covered.Load(); got != riders {
		t.Fatalf("ships covered %d members, want %d", got, riders)
	}
	if s := ships.Load(); s >= riders {
		t.Fatalf("%d ships for %d riders — no batching happened", s, riders)
	}
}

func TestWaveOrphanedTokenIsReclaimed(t *testing.T) {
	// A leader releasing the token with nobody waiting must not strand
	// it: the next rider claims the parked token.
	n := newWaveNotifier(0)
	for round := 0; round < 3; round++ {
		w := n.join(uint64(round), nil, telemetry.SpanContext{})
		done := make(chan error, 1)
		go func() {
			_, err := n.ride(context.Background(), w, func(batch []*commitWave) (string, error) {
				return "ok", nil
			})
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("round %d: rider stuck — leadership token lost", round)
		}
	}
}

func TestWaveRideHonorsContext(t *testing.T) {
	n := newWaveNotifier(0)
	// Park the token on a leader that never finishes its ship.
	blockForever := make(chan struct{})
	defer close(blockForever)
	w1 := n.join(1, nil, telemetry.SpanContext{})
	go n.ride(context.Background(), w1, func([]*commitWave) (string, error) {
		<-blockForever
		return "ok", nil
	})
	// Second rider joins a fresh wave behind the stuck leader and gives
	// up via its context.
	time.Sleep(10 * time.Millisecond) // let the leader detach w1 first
	w2 := n.join(2, nil, telemetry.SpanContext{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := n.ride(ctx, w2, func([]*commitWave) (string, error) {
		t.Error("second rider must not ship: the token is held")
		return "ok", nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
