package ftm

import (
	"context"
	"fmt"
	"sync"

	"resilientft/internal/component"
	"resilientft/internal/rpc"
)

// TypeReplyLog is the component type of the reply log.
const TypeReplyLog = "ftm.replylog"

// lookupQuery is the payload of an OpLookup on the reply log.
type lookupQuery struct {
	ClientID string
	Seq      uint64
}

// lookupResult is the reply payload of an OpLookup.
type lookupResult struct {
	Resp  rpc.Response
	Found bool
}

// lookupCall is the pooled pointer form of an OpLookup: the query rides
// in, the result is filled in place, and nothing is boxed per request.
type lookupCall struct {
	ClientID string
	Seq      uint64
	Resp     rpc.Response
	Found    bool
}

var lookupCallPool = sync.Pool{New: func() any { return new(lookupCall) }}

func getLookupCall() *lookupCall { return lookupCallPool.Get().(*lookupCall) }

func putLookupCall(c *lookupCall) {
	*c = lookupCall{}
	lookupCallPool.Put(c)
}

// markedSnapshot is the reply payload of an OpSnapshotMarked.
type markedSnapshot struct {
	Snap []rpc.Response
	Mark uint64
}

// sinceResult is the reply payload of an OpSnapshotSince. OK is false
// when the log's journal no longer reaches back to the requested mark.
type sinceResult struct {
	Tail []rpc.Response
	Mark uint64
	OK   bool
}

// replyLogContent wraps an rpc.ReplyLog as a component (the "replyLog"
// component of Figure 6). It is FTM state that transitions never touch:
// the differential approach's point is precisely that swapping bricks
// does not lose this state.
type replyLogContent struct {
	log *rpc.ReplyLog
}

func newReplyLogContent(retention int) *replyLogContent {
	return &replyLogContent{log: rpc.NewReplyLog(retention)}
}

var _ component.Content = (*replyLogContent)(nil)

func (r *replyLogContent) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	if service != SvcLog {
		return component.Message{}, fmt.Errorf("%w: service %q on replyLog", component.ErrNotFound, service)
	}
	switch msg.Op {
	case OpLookup:
		switch q := msg.Payload.(type) {
		case *lookupCall:
			q.Resp, q.Found = r.log.Lookup(q.ClientID, q.Seq)
			return component.Message{Op: "ok", Payload: q}, nil
		case lookupQuery:
			resp, found := r.log.Lookup(q.ClientID, q.Seq)
			return component.NewMessage("ok", lookupResult{Resp: resp, Found: found}), nil
		default:
			return component.Message{}, fmt.Errorf("ftm: replyLog lookup payload is %T", msg.Payload)
		}
	case OpRecord:
		switch resp := msg.Payload.(type) {
		case *rpc.Response:
			r.log.Record(*resp)
			return component.NewMessage("ok", nil), nil
		case rpc.Response:
			r.log.Record(resp)
			return component.NewMessage("ok", nil), nil
		default:
			return component.Message{}, fmt.Errorf("ftm: replyLog record payload is %T", msg.Payload)
		}
	case OpSnapshot:
		return component.NewMessage("ok", r.log.Snapshot()), nil
	case OpSnapshotMarked:
		snap, mark := r.log.SnapshotMarked()
		return component.NewMessage("ok", markedSnapshot{Snap: snap, Mark: mark}), nil
	case OpSnapshotSince:
		mark, ok := msg.Payload.(uint64)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: replyLog snapshot-since payload is %T", msg.Payload)
		}
		tail, newMark, sinceOK := r.log.SnapshotSince(mark)
		return component.NewMessage("ok", sinceResult{Tail: tail, Mark: newMark, OK: sinceOK}), nil
	case OpAppendLog:
		switch batch := msg.Payload.(type) {
		case *rpc.ResponseList:
			r.log.RecordAll(*batch)
			return component.NewMessage("ok", nil), nil
		case []rpc.Response:
			r.log.RecordAll(batch)
			return component.NewMessage("ok", nil), nil
		default:
			return component.Message{}, fmt.Errorf("ftm: replyLog append payload is %T", msg.Payload)
		}
	case OpRestoreL:
		snap, ok := msg.Payload.([]rpc.Response)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: replyLog restore payload is %T", msg.Payload)
		}
		r.log.Restore(snap)
		return component.NewMessage("ok", nil), nil
	default:
		return component.Message{}, fmt.Errorf("%w: %q on replyLog", component.ErrUnknownOp, msg.Op)
	}
}

// logClient is a typed facade over the reply log's uniform service,
// used by the protocol and the bricks holding a "log" reference.
type logClient struct {
	svc component.Service
}

func (l logClient) lookup(ctx context.Context, clientID string, seq uint64) (rpc.Response, bool, error) {
	q := getLookupCall()
	q.ClientID, q.Seq = clientID, seq
	reply, err := l.svc.Invoke(ctx, component.Message{Op: OpLookup, Payload: q})
	if err != nil {
		putLookupCall(q)
		return rpc.Response{}, false, err
	}
	if res, ok := reply.Payload.(*lookupCall); ok && res == q {
		resp, found := q.Resp, q.Found
		putLookupCall(q)
		return resp, found, nil
	}
	putLookupCall(q)
	if res, ok := reply.Payload.(lookupResult); ok {
		return res.Resp, res.Found, nil
	}
	return rpc.Response{}, false, fmt.Errorf("ftm: lookup reply is %T", reply.Payload)
}

// record logs a reply. The response is read before record returns, never
// retained, so callers pass a pointer into their own call state.
func (l logClient) record(ctx context.Context, resp *rpc.Response) error {
	_, err := l.svc.Invoke(ctx, component.Message{Op: OpRecord, Payload: resp})
	return err
}

func (l logClient) snapshot(ctx context.Context) ([]rpc.Response, error) {
	reply, err := l.svc.Invoke(ctx, component.Message{Op: OpSnapshot})
	if err != nil {
		return nil, err
	}
	snap, _ := reply.Payload.([]rpc.Response)
	return snap, nil
}

func (l logClient) restore(ctx context.Context, snap []rpc.Response) error {
	_, err := l.svc.Invoke(ctx, component.Message{Op: OpRestoreL, Payload: snap})
	return err
}

func (l logClient) snapshotMarked(ctx context.Context) ([]rpc.Response, uint64, error) {
	reply, err := l.svc.Invoke(ctx, component.Message{Op: OpSnapshotMarked})
	if err != nil {
		return nil, 0, err
	}
	ms, ok := reply.Payload.(markedSnapshot)
	if !ok {
		return nil, 0, fmt.Errorf("ftm: snapshot-marked reply is %T", reply.Payload)
	}
	return ms.Snap, ms.Mark, nil
}

func (l logClient) snapshotSince(ctx context.Context, mark uint64) (sinceResult, error) {
	reply, err := l.svc.Invoke(ctx, component.Message{Op: OpSnapshotSince, Payload: mark})
	if err != nil {
		return sinceResult{}, err
	}
	res, ok := reply.Payload.(sinceResult)
	if !ok {
		return sinceResult{}, fmt.Errorf("ftm: snapshot-since reply is %T", reply.Payload)
	}
	return res, nil
}

func (l logClient) appendBatch(ctx context.Context, batch []rpc.Response) error {
	_, err := l.svc.Invoke(ctx, component.Message{Op: OpAppendLog, Payload: batch})
	return err
}

// appendList is appendBatch without the slice-header boxing: the pooled
// list crosses the boundary by pointer and the log copies the entries.
func (l logClient) appendList(ctx context.Context, batch *rpc.ResponseList) error {
	_, err := l.svc.Invoke(ctx, component.Message{Op: OpAppendLog, Payload: batch})
	return err
}
