package ftm

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/host"
	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

func newShardedTestSystem(t *testing.T, ftmID core.ID, shards int) *ShardedSystem {
	t.Helper()
	s, err := NewShardedSystem(context.Background(), ShardedConfig{
		System:            "calc",
		FTM:               ftmID,
		Shards:            shards,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewShardedSystem(%s, %d): %v", ftmID, shards, err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// TestShardedRoutingServesAllGroups drives keyed requests through the
// router and checks they land on (and only on) the ring-assigned
// groups: each group's state holds exactly the writes of its keys, and
// keys verifiably spread over more than one group.
func TestShardedRoutingServesAllGroups(t *testing.T) {
	const nKeys = 32
	s := newShardedTestSystem(t, core.PBR, 4)
	r, err := s.NewRouter()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	hit := map[string]int{}
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("r%d", i)
		hit[r.Pick(key)]++
		resp, err := r.Invoke(ctx, key, "set:"+key, EncodeArg(int64(i+100)))
		if err != nil {
			t.Fatalf("set %s: %v", key, err)
		}
		if v, _ := DecodeResult(resp.Payload); v != int64(i+100) {
			t.Fatalf("set %s returned %d", key, v)
		}
	}
	if len(hit) < 2 {
		t.Fatalf("all %d keys landed on one group: %v", nKeys, hit)
	}

	// Read every key back through its shard and cross-check the other
	// shards do NOT hold it (a get of an unknown register is 0).
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("r%d", i)
		owner := r.Pick(key)
		resp, err := r.Invoke(ctx, key, "get:"+key, EncodeArg(0))
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if v, _ := DecodeResult(resp.Payload); v != int64(i+100) {
			t.Fatalf("key %s on shard %s reads %d, want %d", key, owner, v, i+100)
		}
		for _, other := range r.Shards() {
			if other == owner {
				continue
			}
			resp, err := r.Shard(other).Invoke(ctx, "get:"+key, EncodeArg(0))
			if err != nil {
				t.Fatalf("cross-get %s on shard %s: %v", key, other, err)
			}
			if v, _ := DecodeResult(resp.Payload); v != 0 {
				t.Fatalf("key %s leaked onto shard %s (reads %d)", key, other, v)
			}
		}
	}

	// The shard-labeled request series moved for every group that served.
	for gid, n := range hit {
		if n == 0 {
			continue
		}
		c, ok := telemetry.Default().FindCounter("ftm_shard_requests_total", "shard", gid)
		if !ok || c.Value() == 0 {
			t.Errorf("shard %s served %d requests but ftm_shard_requests_total{shard=%q} is missing or zero", gid, n, gid)
		}
	}
}

// TestShardedSingleGroupParity pins the N=1 degenerate shape: one
// group behind a router behaves exactly like an unsharded system —
// same results, every key on the one shard. (The cost side of "sharding
// costs nothing when unused" is the benchmark suite's parity row.)
func TestShardedSingleGroupParity(t *testing.T) {
	s := newShardedTestSystem(t, core.PBR, 1)
	r, err := s.NewRouter()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("r%d", i)
		if got := r.Pick(key); got != "0" {
			t.Fatalf("single-group router picked %q", got)
		}
		if _, err := r.Invoke(ctx, key, "add:x", EncodeArg(1)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := r.Invoke(ctx, "x", "get:x", EncodeArg(0))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := DecodeResult(resp.Payload); v != 16 {
		t.Fatalf("x = %d, want 16", v)
	}
}

// TestShardFailoverIsolation is the shard-isolation stress test: kill
// shard k's master mid-batch and check that (a) every other shard keeps
// serving at full rate — zero errors, visible progress — through the
// whole failover window, and (b) the failed-over shard's trace IDs stay
// continuous: a post-promotion redelivery of a pre-crash request joins
// the original trace and replays from the log (the PR4 trace-continuity
// property, now per shard).
func TestShardFailoverIsolation(t *testing.T) {
	const (
		shards   = 3
		failed   = 1 // shard k under test
		preOps   = 6
		burstOps = 4
	)
	s := newShardedTestSystem(t, core.PBR, shards)
	// The workers run untraced: always-on tracing across every shard
	// would flood the bounded span ring and evict the very spans the
	// continuity check reads back.
	r, err := s.NewRouter()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := s.NewRouter(rpc.WithAlwaysTrace())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Independent workers hammer the surviving shards for the duration.
	var stop atomic.Bool
	var workerErrs atomic.Int64
	counts := make([]atomic.Int64, shards)
	done := make(chan struct{})
	workers := 0
	for k := 0; k < shards; k++ {
		if k == failed {
			continue
		}
		workers++
		go func(k int) {
			defer func() { done <- struct{}{} }()
			c := r.Shard(fmt.Sprintf("%d", k))
			for !stop.Load() {
				if _, err := c.Invoke(ctx, "add:x", EncodeArg(1)); err != nil {
					workerErrs.Add(1)
					return
				}
				counts[k].Add(1)
			}
		}(k)
	}

	// Pre-crash traffic on the doomed shard, under explicit sequence
	// numbers so the trace IDs are known.
	fc := rt.Shard(fmt.Sprintf("%d", failed))
	for seq := uint64(1); seq <= preOps; seq++ {
		if _, err := fc.Redeliver(ctx, seq, "add:y", EncodeArg(1)); err != nil {
			t.Fatalf("shard %d seq %d: %v", failed, seq, err)
		}
	}
	traceID := telemetry.TraceIDFor(fc.ID(), 1)

	// Crash the master while a burst keeps waves in flight.
	burstDone := make(chan struct{})
	go func() {
		defer close(burstDone)
		for seq := uint64(preOps + 1); seq <= preOps+burstOps; seq++ {
			_, _ = fc.Redeliver(ctx, seq, "add:y", EncodeArg(1))
		}
	}()
	time.Sleep(2 * time.Millisecond)
	pre := make([]int64, shards)
	for k := range pre {
		pre[k] = counts[k].Load()
	}
	if s.Group(failed).CrashMaster() < 0 {
		t.Fatal("no master to crash on the target shard")
	}
	<-burstDone
	waitUntil(t, 5*time.Second, func() bool { return s.Group(failed).Master() != nil },
		"no replica promoted on the crashed shard")

	// (a) The surviving shards made progress during the failover window
	// and saw not a single error.
	for k := 0; k < shards; k++ {
		if k == failed {
			continue
		}
		if delta := counts[k].Load() - pre[k]; delta <= 0 {
			t.Errorf("shard %d stalled during shard %d's failover (%d ops in the window)", k, failed, delta)
		}
	}
	stop.Store(true)
	for i := 0; i < workers; i++ {
		<-done
	}
	if n := workerErrs.Load(); n != 0 {
		t.Fatalf("%d worker errors on shards that were not failing over", n)
	}

	// (b) Trace continuity on the failed-over shard.
	dup, err := fc.Redeliver(ctx, 1, "add:y", EncodeArg(1))
	if err != nil {
		t.Fatalf("post-failover redelivery on shard %d: %v", failed, err)
	}
	if !dup.Replayed {
		t.Fatal("post-failover redelivery was not replayed from the log")
	}
	names := map[string]int{}
	for _, sp := range telemetry.DefaultSpans().ForTrace(traceID) {
		names[sp.Name]++
	}
	for _, want := range []string{"rpc.client", "ftm.execute", "ftm.replay"} {
		if names[want] == 0 {
			t.Fatalf("trace %016x missing %q spans after failover: %v", traceID, want, names)
		}
	}
	if names["rpc.client"] < 2 {
		t.Fatalf("redelivery did not join the original trace: %v", names)
	}

	// The shard's state survived: y accumulated exactly the pre-crash
	// writes plus whatever of the burst committed, each exactly once.
	// (An explicit fresh sequence number: Invoke would reuse seq 1 and
	// replay the logged add instead of reading.)
	resp, err := fc.Redeliver(ctx, preOps+burstOps+1, "get:y", EncodeArg(0))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := DecodeResult(resp.Payload)
	if v < preOps || v > preOps+burstOps {
		t.Fatalf("y = %d after failover, want within [%d, %d]", v, preOps, preOps+burstOps)
	}
}

// TestGroupsShareEndpointPair deploys two replica groups onto the SAME
// host pair: both masters on host a, both slaves on host b, every
// replica sharing its host's one endpoint. This is the one-process
// shape of sharding (resilientd -shards) and exercises the endpoint
// demultiplexers directly: the group mux must route each group's
// requests and inter-replica traffic to the right composite, and the
// heartbeat hub must feed both groups' watchdogs — with the old
// one-handler-per-endpoint registration, the second group's detector
// would starve the first's, and the starved slave would falsely promote
// into a split brain.
func TestGroupsShareEndpointPair(t *testing.T) {
	net := transport.NewMemNetwork(transport.WithSeed(1))
	reg := NewRegistry()
	ha, err := host.New("shared-a", net, reg)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := host.New("shared-b", net, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !ha.Crashed() {
			ha.Crash()
		}
		if !hb.Crashed() {
			hb.Crash()
		}
	})

	ctx := context.Background()
	const suspect = 60 * time.Millisecond
	groups := []string{"g0", "g1"}
	slaves := make([]*Replica, len(groups))
	for i, gid := range groups {
		for _, side := range []struct {
			h    *host.Host
			peer *host.Host
			role core.Role
		}{{ha, hb, core.RoleMaster}, {hb, ha, core.RoleSlave}} {
			rep, err := NewReplica(ctx, side.h, ReplicaConfig{
				System:            "calc-" + gid,
				Group:             gid,
				FTM:               core.PBR,
				Role:              side.role,
				Peer:              side.peer.Addr(),
				App:               NewCalculator(),
				HeartbeatInterval: 10 * time.Millisecond,
				SuspectTimeout:    suspect,
			})
			if err != nil {
				t.Fatalf("group %s on %s: %v", gid, side.h.Name(), err)
			}
			if side.role == core.RoleSlave {
				slaves[i] = rep
			}
		}
	}

	// Each group serves its own clients and keeps its own state.
	for i, gid := range groups {
		ep, err := net.Endpoint(transport.Address("client-" + gid))
		if err != nil {
			t.Fatal(err)
		}
		c := rpc.NewClient("c-"+gid, ep, []transport.Address{ha.Addr(), hb.Addr()}, rpc.WithGroup(gid))
		resp, err := c.Invoke(ctx, "set:x", EncodeArg(int64(10+i)))
		if err != nil {
			t.Fatalf("group %s: %v", gid, err)
		}
		if v, _ := DecodeResult(resp.Payload); v != int64(10+i) {
			t.Fatalf("group %s: x = %d", gid, v)
		}
	}

	// Both groups' detectors stay fed across the shared endpoints: no
	// slave may suspect its live master and promote. Give the watchdogs
	// several suspicion windows to get it wrong.
	time.Sleep(5 * suspect)
	for i, gid := range groups {
		if role := slaves[i].Role(); role != core.RoleSlave {
			t.Fatalf("group %s slave promoted to %s with a live master — its watchdog starved", gid, role)
		}
	}

	// A request stamped for a group this endpoint does not host is
	// refused, not silently served by the wrong composite.
	ep, err := net.Endpoint(transport.Address("client-nogroup"))
	if err != nil {
		t.Fatal(err)
	}
	c := rpc.NewClient("c-nogroup", ep, []transport.Address{ha.Addr()},
		rpc.WithGroup("g9"), rpc.WithMaxRounds(1), rpc.WithCallTimeout(200*time.Millisecond))
	if _, err := c.Invoke(ctx, "get:x", EncodeArg(0)); err == nil {
		t.Fatal("request for an unhosted group was served")
	}
}
