package ftm

import (
	"context"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/faultinject"
)

// faultySystem builds a system whose master-side application carries a
// value injector.
func faultySystem(t *testing.T, ftmID core.ID, seed int64) (*System, *faultinject.ValueInjector) {
	t.Helper()
	inj := faultinject.NewValueInjector(seed)
	first := true
	cfg := fastConfig(ftmID)
	cfg.AppFactory = func() Application {
		c := NewCalculator()
		if first {
			// The master deploys first in NewSystem.
			c.SetInjector(inj)
			first = false
		}
		return c
	}
	s, err := NewSystem(context.Background(), cfg)
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", ftmID, err)
	}
	t.Cleanup(s.Shutdown)
	return s, inj
}

func TestLFRTRMasksTransientFault(t *testing.T) {
	s, inj := faultySystem(t, core.LFRTR, 11)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 100)
	inj.InjectTransient(1)
	// The corrupted execution disagrees with the clean re-execution; the
	// third vote masks the fault and the client sees the right value.
	if got := invoke(t, c, "add:x", 11); got != 111 {
		t.Fatalf("result under transient fault = %d, want 111", got)
	}
	if inj.Injected() == 0 {
		t.Fatal("fault was never injected — the test proved nothing")
	}
	if got := invoke(t, c, "get:x", 0); got != 111 {
		t.Fatalf("state after masked fault = %d, want 111", got)
	}
}

func TestPBRTRMasksTransientFault(t *testing.T) {
	s, inj := faultySystem(t, core.PBRTR, 12)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 10)
	inj.InjectTransient(1)
	if got := invoke(t, c, "add:x", 7); got != 17 {
		t.Fatalf("result under transient fault = %d, want 17", got)
	}
	if inj.Injected() == 0 {
		t.Fatal("fault was never injected")
	}
}

func TestPlainPBRDoesNotMaskValueFault(t *testing.T) {
	// Negative control: PBR alone does not tolerate value faults — the
	// corrupted result reaches the client. This is exactly the Table 1
	// boundary that forces the FT-triggered transitions of Figure 2.
	s, inj := faultySystem(t, core.PBR, 13)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 10)
	inj.InjectTransient(1)
	got := invoke(t, c, "add:x", 7)
	if got == 17 {
		t.Fatal("PBR unexpectedly masked a value fault (injector never fired?)")
	}
}

func TestAPBRMasksTransientViaPeerReexecution(t *testing.T) {
	s, inj := faultySystem(t, core.APBR, 14)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 20)
	inj.InjectTransient(1)
	// The assertion rejects the corrupted local result; the request
	// re-executes on the backup (the other node), which answers cleanly.
	if got := invoke(t, c, "add:x", 5); got != 25 {
		t.Fatalf("result under assertion escalation = %d, want 25", got)
	}
	if inj.Injected() == 0 {
		t.Fatal("fault was never injected")
	}
}

func TestALFRMasksTransientViaPeerReplay(t *testing.T) {
	s, inj := faultySystem(t, core.ALFR, 15)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 30)
	inj.InjectTransient(1)
	if got := invoke(t, c, "add:x", 4); got != 34 {
		t.Fatalf("result under assertion escalation = %d, want 34", got)
	}
}

func TestAPBRPermanentFaultFailsSilentAndFailsOver(t *testing.T) {
	s, inj := faultySystem(t, core.APBR, 16)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 1)
	oldMaster := s.Master()
	inj.SetPermanent(true)

	// Every request on the faulty master fails its assertion and is
	// served by peer re-execution; after the threshold the master falls
	// silent and the backup takes over. Throughout, the client observes
	// only correct values.
	for i := int64(1); i <= 6; i++ {
		got := invoke(t, c, "add:x", 1)
		if got != 1+i {
			t.Fatalf("request %d = %d, want %d", i, got, 1+i)
		}
	}
	waitUntil(t, 5*time.Second, func() bool {
		return oldMaster.Host().Crashed()
	}, "permanently-faulty master never fell silent")
	waitUntil(t, 5*time.Second, func() bool {
		m := s.Master()
		return m != nil && m != oldMaster
	}, "backup never took over from the faulty master")
	// The survivor (whose app has no injector) serves cleanly.
	if got := invoke(t, c, "add:x", 1); got != 8 {
		t.Fatalf("post-takeover add = %d, want 8", got)
	}
}

func TestTRUnrecoverableReportsError(t *testing.T) {
	// Three executions, three different corrupted results: TR must give
	// up rather than reply with a wrong value, and the request must have
	// no effect on state.
	s, inj := faultySystem(t, core.LFRTR, 17)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 5)
	inj.InjectTransient(3)
	resp, err := c.Invoke(context.Background(), "add:x", EncodeArg(1))
	if err == nil {
		v, _ := DecodeResult(resp.Payload)
		if v != 6 {
			t.Fatalf("TR replied %d under triple corruption, want an error or the correct 6", v)
		}
		return // three corruptions happened to agree with a clean pair — acceptable
	}
	// Whatever failed, the client never saw a wrong value: verify via a
	// clean read after the injector drains.
	for inj.Armed() {
		_, _ = c.Invoke(context.Background(), "get:x", EncodeArg(0))
	}
	got := invoke(t, c, "get:x", 0)
	if got != 5 && got != 6 {
		t.Fatalf("state after unrecoverable request = %d, want 5 or 6", got)
	}
}
