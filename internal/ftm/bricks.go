package ftm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"resilientft/internal/appstate"
	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// The bricks in this file are the variable features of the
// Before-Proceed-After generic execution scheme (Table 2): small,
// stateless components that differential transitions add and remove.
// Everything stateful (reply log, server, protocol) lives elsewhere and
// survives transitions untouched.

// brickRefs is the shared reference receiver of all bricks.
type brickRefs struct {
	mu   sync.Mutex
	refs map[string]component.Service
}

func (b *brickRefs) SetReference(name string, target component.Service) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.refs == nil {
		b.refs = make(map[string]component.Service)
	}
	if target == nil {
		delete(b.refs, name)
		return
	}
	b.refs[name] = target
}

func (b *brickRefs) ref(name string) component.Service {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.refs[name]
}

func callPayload(msg component.Message) (*Call, error) {
	call, ok := msg.Payload.(*Call)
	if !ok {
		return nil, fmt.Errorf("ftm: brick payload is %T, want *Call", msg.Payload)
	}
	return call, nil
}

// intProperty coerces a property value to int — fscript `set` statements
// deliver strings, programmatic callers deliver ints.
func intProperty(value any) (int, error) {
	switch v := value.(type) {
	case int:
		return v, nil
	case string:
		return strconv.Atoi(v)
	default:
		return 0, fmt.Errorf("value is %T, want int", value)
	}
}

// --- Nothing -----------------------------------------------------------

// nopBrick fills a slot whose Table 2 entry is "Nothing".
type nopBrick struct{}

func (nopBrick) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	return component.NewMessage("ok", msg.Payload), nil
}

// --- Proceed: plain computation -----------------------------------------

// computeProceed forwards the request to the server (Table 2 "Compute").
type computeProceed struct {
	brickRefs
}

func (p *computeProceed) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	if err := (processClient{svc: p.ref("server")}).run(ctx, call); err != nil {
		return component.Message{}, err
	}
	return component.NewMessage("ok", call), nil
}

// noProceed is the PBR backup's empty Proceed (Table 2 "Nothing"): the
// backup does not compute, it applies checkpoints.
type noProceed struct{}

func (noProceed) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	return component.NewMessage("ok", msg.Payload), nil
}

// --- Proceed: time redundancy -------------------------------------------

// trProceed executes the request redundantly on one host: compute,
// restore the pre-state, recompute, compare; on mismatch a third
// execution votes two-out-of-three (§3.2.1). State is restored between
// executions so exactly one execution's effects survive.
type trProceed struct {
	brickRefs
}

func sameOutcome(a, b rpc.Response) bool {
	return a.Status == b.Status && a.Err == b.Err && bytes.Equal(a.Payload, b.Payload)
}

func (p *trProceed) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	server := processClient{svc: p.ref("server")}
	state := stateClient{svc: p.ref("state")}

	snap := call.StateSnapshot
	if !call.HasSnapshot {
		snap, err = state.capture(ctx)
		if err != nil {
			return component.Message{}, fmt.Errorf("ftm: tr: pre-capture: %w", err)
		}
	}

	exec := func() (rpc.Response, error) {
		if err := server.run(ctx, call); err != nil {
			return rpc.Response{}, err
		}
		return call.Result, nil
	}

	r1, err := exec()
	if err != nil {
		return component.Message{}, err
	}
	if err := state.restore(ctx, snap); err != nil {
		return component.Message{}, fmt.Errorf("ftm: tr: restore between executions: %w", err)
	}
	r2, err := exec()
	if err != nil {
		return component.Message{}, err
	}
	if sameOutcome(r1, r2) {
		call.Result = r2
		return component.NewMessage("ok", call), nil
	}
	// Results differ: a transient fault hit one execution. Vote with a
	// third.
	if err := state.restore(ctx, snap); err != nil {
		return component.Message{}, fmt.Errorf("ftm: tr: restore before vote: %w", err)
	}
	r3, err := exec()
	if err != nil {
		return component.Message{}, err
	}
	if sameOutcome(r3, r1) || sameOutcome(r3, r2) {
		call.Result = r3
		return component.NewMessage("ok", call), nil
	}
	call.Unrecoverable = true
	return component.Message{}, fmt.Errorf("%w: request %s", ErrUnrecoverable, call.Req.ID())
}

// --- Proceed: assertion ---------------------------------------------------

// assertProceed computes and then checks the application's safety
// assertion on the result (Table 2 "Assert output"). A violation is
// escalated to the protocol, which re-executes on the other node
// (A&Duplex, §3.2.1).
type assertProceed struct {
	brickRefs
}

func (p *assertProceed) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	if err := (processClient{svc: p.ref("server")}).run(ctx, call); err != nil {
		return component.Message{}, err
	}
	if call.Result.Status != rpc.StatusOK {
		return component.NewMessage("ok", call), nil
	}
	ok, err := (assertClient{svc: p.ref("assert")}).check(ctx, call)
	if err != nil {
		return component.Message{}, err
	}
	if !ok {
		return component.Message{}, fmt.Errorf("%w: request %s", ErrAssertionFailed, call.Req.ID())
	}
	return component.NewMessage("ok", call), nil
}

// --- PBR bricks ------------------------------------------------------------

// pbrFullCheckpointEvery bounds how many consecutive delta checkpoints
// the primary ships before forcing a full one, so a backup silently
// drifting (or a bug in delta application) self-heals within a bounded
// number of requests.
const pbrFullCheckpointEvery = 64

// pbrResyncReply is the backup's answer to a delta whose base version
// does not match its state; the primary reacts with a full checkpoint.
var pbrResyncReply = []byte("resync")

// defaultMaxWave bounds how many requests one shipped synchronization
// may cover (group commit). Large enough that realistic client counts
// coalesce into a single ship; bounded so a ship's reply-log tail cannot
// grow without limit under extreme load.
const defaultMaxWave = 256

// pbrCheckpointAfter is the primary's After (Table 2 "Checkpoint to
// Backup"): capture application state and the reply log and ship them to
// the backup. With no live peer the primary continues master-alone; the
// backup resynchronizes when it rejoins.
//
// After a first acknowledged full checkpoint the brick switches to delta
// checkpoints: the state write-set since the acknowledged version plus
// the reply-log tail since the acknowledged mark — O(write-set) per
// request instead of O(state). A full checkpoint is forced again when
// the state manager cannot produce the delta, the backup answers
// "resync" (its base version mismatches, e.g. after a restart), the
// peer was lost in between, or pbrFullCheckpointEvery deltas went out.
//
// Concurrent requests group-commit: they join a commit wave, the
// leadership-token holder ships ONE delta covering every member (the
// delta is relative to the last acknowledged version, so a capture taken
// after all member replies were recorded covers all of them), and each
// request returns only once a ship covering it is acknowledged — the
// reply-release invariant is per-wave instead of per-request.
//
// The brick is variable-feature state: a transition or promotion
// replaces it, which zeroes the ack tracking and correctly forces a
// full checkpoint on the next request. In-flight waves drain before the
// replacement: the component gate closes and quiescence waits for every
// rider, so a brick swap flushes outstanding waves cleanly.
type pbrCheckpointAfter struct {
	brickRefs

	// waves orders ships across concurrent requests: deltas are relative
	// to the last acknowledged version, so only the leadership-token
	// holder captures and ships.
	waves *waveNotifier

	// Ack bookkeeping, touched only while holding the leadership token
	// (the token handoff through the notifier's channel is the
	// happens-before edge between successive shippers).
	// synced is true once the backup acknowledged a checkpoint; the
	// fields below are only meaningful then.
	synced      bool
	ackVersion  uint64
	ackMark     uint64
	deltasSince int
}

var (
	_ component.Content          = (*pbrCheckpointAfter)(nil)
	_ component.PropertyReceiver = (*pbrCheckpointAfter)(nil)
)

// SetProperty accepts the wave-size cap ("maxWave") and the
// accumulation-window tunables ("accumWindow" in ns, -1 restoring the
// adaptive controller; "accumTarget" in ns), settable from an fscript
// `set` statement or an ftmctl tune command.
func (a *pbrCheckpointAfter) SetProperty(name string, value any) error {
	return waveProperty(a.waves, name, value)
}

func (a *pbrCheckpointAfter) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	switch msg.Op {
	case OpRun:
		call, err := callPayload(msg)
		if err != nil {
			return component.Message{}, err
		}
		outcome, err := a.sync(ctx, call.Req.Seq, call.Req.Trace)
		if err != nil {
			return component.Message{}, err
		}
		return component.NewMessage(outcome, call), nil
	case OpFlush:
		// A replayed reply may predate the last acknowledged checkpoint
		// (its original After failed mid-ship or is still in flight):
		// ride a wave before the protocol releases it. Any acknowledged
		// delta covers the full reply-log tail, so completing one wave
		// guarantees the logged reply reached the backup.
		resp, _ := msg.Payload.(rpc.Response)
		outcome, err := a.sync(ctx, resp.Seq, telemetry.ParseSpanContext(msg.MetaValue(MetaTrace)))
		if err != nil {
			return component.Message{}, err
		}
		return component.NewMessage(outcome, nil), nil
	default:
		return component.Message{}, fmt.Errorf("%w: %q on pbr.checkpoint", component.ErrUnknownOp, msg.Op)
	}
}

// sync joins a commit wave and blocks until a ship covering it completed.
func (a *pbrCheckpointAfter) sync(ctx context.Context, seq uint64, trace telemetry.SpanContext) (string, error) {
	w := a.waves.join(seq, nil, trace)
	return a.waves.ride(ctx, w, func(batch []*commitWave) (string, error) {
		return a.shipWave(ctx, batch, trace)
	})
}

// shipWave ships one checkpoint covering every member of the detached
// batch. Runs only under the leadership token. trace is the shipping
// leader's span context; member traces get cover spans instead.
func (a *pbrCheckpointAfter) shipWave(ctx context.Context, batch []*commitWave, trace telemetry.SpanContext) (string, error) {
	var members int
	var maxSeq uint64
	for _, w := range batch {
		members += w.members
		if w.maxSeq > maxSeq {
			maxSeq = w.maxSeq
		}
	}
	mWavePBR.Inc()
	mWavePBRRequests.Add(uint64(members))
	mCkptBatchSize.Observe(time.Duration(members))

	start := time.Now()
	sp := telemetry.DefaultSpans().Start(trace, "ftm.wave.ship")
	if sp != nil {
		sp.SetAttr("ftm", "pbr")
		sp.SetAttr("members", strconv.Itoa(members))
	}
	outcome, err := a.shipCheckpoint(ctx, sp, maxSeq)
	mWaveShipLatency.Observe(time.Since(start))
	if err != nil {
		sp.SetAttr("outcome", "error")
	} else {
		sp.SetAttr("outcome", outcome)
	}
	sp.End()
	if err == nil {
		coverSpans(batch, "pbr", start, outcome)
	}
	return outcome, err
}

// shipCheckpoint ships one delta or full checkpoint; sp (nil when the
// leader is unsampled) is annotated with the chosen mode and parents
// the peer send.
func (a *pbrCheckpointAfter) shipCheckpoint(ctx context.Context, sp *telemetry.ActiveSpan, maxSeq uint64) (string, error) {
	state := stateClient{svc: a.ref("state")}
	log := logClient{svc: a.ref("log")}
	peer := peerClient{svc: a.ref("peer")}

	if a.synced && a.deltasSince < pbrFullCheckpointEvery {
		shipped, err := a.shipDelta(ctx, state, log, peer, maxSeq, sp)
		if err != nil {
			if errors.Is(err, ErrNoPeer) {
				// Degraded mode: the failure detector owns peer liveness.
				// The backup's state is unknown once it rejoins, so the
				// next checkpoint must be full.
				a.synced = false
				mDegraded.Inc()
				return "degraded", nil
			}
			mWavePBRFailed.Inc()
			return "", err
		}
		if shipped {
			return "ok", nil
		}
		// Delta impossible (no tracking, pruned history, or backup
		// resync): fall through to a full checkpoint.
	}

	data, version, mark, err := buildCheckpoint(ctx, state, log, maxSeq)
	if err != nil {
		mWavePBRFailed.Inc()
		return "", err
	}
	sp.SetAttr("mode", "full")
	_, shipErr := peer.callTraced(ctx, MsgPBRCheckpoint, data, sp.Context())
	transport.PutBuf(data)
	if err := shipErr; err != nil {
		a.synced = false
		if errors.Is(err, ErrNoPeer) {
			mDegraded.Inc()
			return "degraded", nil
		}
		mWavePBRFailed.Inc()
		return "", err
	}
	mCkptFull.Inc()
	mCkptFullBytes.Add(uint64(len(data)))
	a.synced = true
	a.ackVersion = version
	a.ackMark = mark
	a.deltasSince = 0
	return "ok", nil
}

// shipDelta attempts an incremental checkpoint against the acknowledged
// base. It returns shipped=false (and no error) whenever the caller
// should fall back to a full checkpoint.
func (a *pbrCheckpointAfter) shipDelta(ctx context.Context, state stateClient, log logClient, peer peerClient, lastSeq uint64, sp *telemetry.ActiveSpan) (bool, error) {
	cd, err := state.captureDelta(ctx, a.ackVersion)
	if err != nil {
		return false, fmt.Errorf("ftm: delta capture: %w", err)
	}
	if !cd.Supported || !cd.OK {
		return false, nil
	}
	since, err := log.snapshotSince(ctx, a.ackMark)
	if err != nil {
		return false, fmt.Errorf("ftm: delta log tail: %w", err)
	}
	if !since.OK {
		return false, nil
	}
	// Every buffer on this path cycles through the transport pool: the
	// tail and delta captures are copied into the checkpoint envelope and
	// returned immediately; the envelope is recycled after the ship.
	tailData, err := transport.EncodePooled(rpc.ResponseList(since.Tail))
	if err != nil {
		return false, err
	}
	data, err := transport.EncodePooled(appstate.DeltaCheckpoint{
		BaseVersion: a.ackVersion,
		ToVersion:   cd.To,
		Delta:       cd.Delta,
		ReplyTail:   tailData,
		LastSeq:     lastSeq,
	})
	transport.PutBuf(tailData)
	transport.PutBuf(cd.Delta)
	if err != nil {
		return false, err
	}
	sp.SetAttr("mode", "delta")
	reply, err := peer.callTraced(ctx, MsgPBRDelta, data, sp.Context())
	// The bridge copied the payload into its wire envelope before the
	// send, so the buffer is free regardless of the call's outcome.
	transport.PutBuf(data)
	if err != nil {
		if errors.Is(err, ErrNoPeer) {
			return false, err
		}
		// The backup may or may not have applied the delta; only a full
		// checkpoint re-establishes a known base.
		a.synced = false
		return false, nil
	}
	if bytes.Equal(reply, pbrResyncReply) {
		a.synced = false
		mResyncPrimary.Inc()
		return false, nil
	}
	mCkptDelta.Inc()
	mCkptDeltaBytes.Add(uint64(len(data)))
	a.ackVersion = cd.To
	a.ackMark = since.Mark
	a.deltasSince++
	return true, nil
}

// buildCheckpoint assembles an encoded full checkpoint from the live
// state and reply log, returning alongside it the state version and
// reply-log mark the checkpoint represents (the base for later deltas).
func buildCheckpoint(ctx context.Context, state stateClient, log logClient, lastSeq uint64) ([]byte, uint64, uint64, error) {
	appState, version, err := state.captureVersioned(ctx)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("ftm: checkpoint capture: %w", err)
	}
	snap, mark, err := log.snapshotMarked(ctx)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("ftm: checkpoint log snapshot: %w", err)
	}
	// The reply-log snapshot travels fast-coded (a ResponseList), like
	// the delta tails; gob survives only as the decode arm for frames
	// from older primaries. Both intermediate buffers are copied into the
	// checkpoint envelope and recycled before returning.
	logData, err := transport.EncodePooled(rpc.ResponseList(snap))
	if err != nil {
		return nil, 0, 0, err
	}
	data, err := transport.EncodePooled(appstate.Checkpoint{
		AppState:     appState,
		ReplyLog:     logData,
		LastSeq:      lastSeq,
		StateVersion: version,
	})
	transport.PutBuf(logData)
	transport.PutBuf(appState)
	if err != nil {
		return nil, 0, 0, err
	}
	return data, version, mark, nil
}

// applyCheckpoint restores state and reply log from an encoded full
// checkpoint, adopting the sender's state version so subsequent deltas
// line up.
func applyCheckpoint(ctx context.Context, state stateClient, log logClient, data []byte) error {
	// The in-place decode aliases the inbound frame, which outlives the
	// apply: everything retained downstream (state cells, logged replies)
	// is copied as it is applied.
	cp, err := appstate.DecodeCheckpointInPlace(data)
	if err != nil {
		return fmt.Errorf("ftm: checkpoint decode: %w", err)
	}
	if err := state.applyFull(ctx, cp.AppState, cp.StateVersion); err != nil {
		return fmt.Errorf("ftm: checkpoint state restore: %w", err)
	}
	var snap rpc.ResponseList
	if err := transport.Decode(cp.ReplyLog, &snap); err != nil {
		return fmt.Errorf("ftm: checkpoint log decode: %w", err)
	}
	if err := log.restore(ctx, snap); err != nil {
		return fmt.Errorf("ftm: checkpoint log restore: %w", err)
	}
	return nil
}

// applyDeltaCheckpoint applies an incremental checkpoint. needResync
// reports a base-version mismatch (the caller answers "resync", no
// error): the delta's reply tail is then deliberately NOT applied, so
// the backup's log never runs ahead of its state.
func applyDeltaCheckpoint(ctx context.Context, state stateClient, log logClient, data []byte) (needResync bool, err error) {
	// Zero-copy decode: Delta and ReplyTail alias the inbound frame,
	// which stays alive for the whole apply. The state manager and the
	// reply log copy what they retain.
	dc, err := appstate.DecodeDeltaCheckpointInPlace(data)
	if err != nil {
		return false, fmt.Errorf("ftm: delta checkpoint decode: %w", err)
	}
	res, err := state.applyDelta(ctx, dc.Delta)
	if err != nil {
		return false, fmt.Errorf("ftm: delta state apply: %w", err)
	}
	if res.BaseMismatch {
		return true, nil
	}
	tail := getRespList()
	defer putRespList(tail)
	if err := transport.Decode(dc.ReplyTail, tail); err != nil {
		return false, fmt.Errorf("ftm: delta log decode: %w", err)
	}
	if len(*tail) > 0 {
		if err := log.appendList(ctx, tail); err != nil {
			return false, fmt.Errorf("ftm: delta log apply: %w", err)
		}
	}
	return false, nil
}

// pbrApplyAfter is the backup's After (Table 2 "Process checkpoint").
// During the pipeline it does nothing (the backup does not compute); it
// processes full and delta checkpoints pushed by the primary through the
// protocol.
type pbrApplyAfter struct {
	brickRefs
}

func (a *pbrApplyAfter) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	switch msg.Op {
	case OpRun, OpFlush:
		return component.NewMessage("ok", msg.Payload), nil
	case "checkpoint":
		data, ok := msg.Payload.([]byte)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: checkpoint payload is %T", msg.Payload)
		}
		err := applyCheckpoint(ctx,
			stateClient{svc: a.ref("state")},
			logClient{svc: a.ref("log")},
			data)
		if err != nil {
			return component.Message{}, err
		}
		mApplyFull.Inc()
		return component.NewMessage("ok", nil), nil
	case "delta":
		data, ok := msg.Payload.([]byte)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: delta checkpoint payload is %T", msg.Payload)
		}
		needResync, err := applyDeltaCheckpoint(ctx,
			stateClient{svc: a.ref("state")},
			logClient{svc: a.ref("log")},
			data)
		if err != nil {
			return component.Message{}, err
		}
		if needResync {
			mResyncBackup.Inc()
			return component.NewMessage("resync", pbrResyncReply), nil
		}
		mApplyDelta.Inc()
		return component.NewMessage("ok", nil), nil
	default:
		return component.Message{}, fmt.Errorf("%w: %q on pbr.apply", component.ErrUnknownOp, msg.Op)
	}
}

// --- LFR bricks ------------------------------------------------------------

// lfrForwardBefore is the leader's Before (Table 2 "Forward request"):
// ship the request to the follower so both replicas process it.
type lfrForwardBefore struct {
	brickRefs
}

func (b *lfrForwardBefore) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	data, err := transport.EncodePooled(call.Req)
	if err != nil {
		return component.Message{}, err
	}
	// The forwarded request carries its own trace context inside the
	// encoded Request; the trace meta additionally parents the bridge's
	// ship span under this call.
	_, err = (peerClient{svc: b.ref("peer")}).callTraced(ctx, MsgLFRExec, data, call.Req.Trace)
	transport.PutBuf(data)
	if err != nil {
		if errors.Is(err, ErrNoPeer) {
			return component.NewMessage("degraded", call), nil
		}
		return component.Message{}, err
	}
	return component.NewMessage("ok", call), nil
}

// lfrReceiveBefore is the follower's Before (Table 2 "Receive request").
// The protocol has already unpacked the forwarded request into the call;
// the brick marks the reception step of the generic scheme.
type lfrReceiveBefore struct{}

func (lfrReceiveBefore) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	return component.NewMessage("ok", msg.Payload), nil
}

// commitMsg is the leader's completion notification. It travels once
// per request under LFR, so it rides the transport fast codec (the body
// is exactly the response's fast encoding).
type commitMsg struct {
	Resp rpc.Response
}

var (
	_ transport.FastMarshaler   = commitMsg{}
	_ transport.FastUnmarshaler = (*commitMsg)(nil)
)

// AppendFast implements transport.FastMarshaler.
func (c commitMsg) AppendFast(buf []byte) []byte { return c.Resp.AppendFast(buf) }

// DecodeFast implements transport.FastUnmarshaler.
func (c *commitMsg) DecodeFast(data []byte) error { return c.Resp.DecodeFast(data) }

// lfrNotifyAfter is the leader's After (Table 2 "Notify Follower"): tell
// the follower the reply went out, so its reply log converges on the
// leader's outcome. Concurrent requests group-commit: their replies join
// a commit wave and the leadership-token holder ships them as one batch
// notification, so N in-flight requests cost one peer round-trip.
type lfrNotifyAfter struct {
	brickRefs
	waves *waveNotifier
}

var (
	_ component.Content          = (*lfrNotifyAfter)(nil)
	_ component.PropertyReceiver = (*lfrNotifyAfter)(nil)
)

// SetProperty accepts the wave-size cap ("maxWave") and the
// accumulation-window tunables ("accumWindow", "accumTarget").
func (a *lfrNotifyAfter) SetProperty(name string, value any) error {
	return waveProperty(a.waves, name, value)
}

// waveProperty routes the shared wave-batching tunables of the
// synchronizing After bricks onto their notifier.
func waveProperty(waves *waveNotifier, name string, value any) error {
	switch name {
	case "maxWave":
		m, err := intProperty(value)
		if err != nil {
			return fmt.Errorf("ftm: maxWave property: %w", err)
		}
		waves.setMaxWave(m)
	case "accumWindow":
		ns, err := intProperty(value)
		if err != nil {
			return fmt.Errorf("ftm: accumWindow property: %w", err)
		}
		waves.accum.setFixed(int64(ns))
	case "accumTarget":
		ns, err := intProperty(value)
		if err != nil {
			return fmt.Errorf("ftm: accumTarget property: %w", err)
		}
		waves.accum.setTarget(int64(ns))
	}
	return nil // unknown properties are inert
}

func (a *lfrNotifyAfter) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	switch msg.Op {
	case OpRun:
		call, err := callPayload(msg)
		if err != nil {
			return component.Message{}, err
		}
		outcome, err := a.sync(ctx, call.Result, call.Req.Trace)
		if err != nil {
			return component.Message{}, err
		}
		return component.NewMessage(outcome, call), nil
	case OpFlush:
		// A replayed reply may never have reached the follower (its
		// original notification failed): re-commit it in a wave before
		// the protocol releases it. The follower's record is idempotent,
		// so a reply committed twice is harmless.
		resp, ok := msg.Payload.(rpc.Response)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: flush payload is %T", msg.Payload)
		}
		outcome, err := a.sync(ctx, resp, telemetry.ParseSpanContext(msg.MetaValue(MetaTrace)))
		if err != nil {
			return component.Message{}, err
		}
		return component.NewMessage(outcome, nil), nil
	default:
		return component.Message{}, fmt.Errorf("%w: %q on lfr.notify", component.ErrUnknownOp, msg.Op)
	}
}

// sync joins a commit wave carrying resp and blocks until a ship
// covering it completed.
func (a *lfrNotifyAfter) sync(ctx context.Context, resp rpc.Response, trace telemetry.SpanContext) (string, error) {
	w := a.waves.join(resp.Seq, &resp, trace)
	return a.waves.ride(ctx, w, func(batch []*commitWave) (string, error) {
		return a.shipWave(ctx, batch, trace)
	})
}

// shipWave ships the member replies of one detached batch: a single
// commit for a lone member, a batch commit otherwise.
func (a *lfrNotifyAfter) shipWave(ctx context.Context, batch []*commitWave, trace telemetry.SpanContext) (string, error) {
	var resps []rpc.Response
	for _, w := range batch {
		resps = append(resps, w.resps...)
	}
	mWaveLFR.Inc()
	mWaveLFRRequests.Add(uint64(len(resps)))

	start := time.Now()
	sp := telemetry.DefaultSpans().Start(trace, "ftm.wave.ship")
	if sp != nil {
		sp.SetAttr("ftm", "lfr")
		sp.SetAttr("members", strconv.Itoa(len(resps)))
	}

	var kind string
	var data []byte
	var err error
	if len(resps) == 1 {
		kind = MsgLFRCommit
		data, err = transport.EncodePooled(commitMsg{Resp: resps[0]})
	} else {
		kind = MsgLFRCommitBatch
		data, err = transport.EncodePooled(rpc.ResponseList(resps))
	}
	if err != nil {
		mWaveLFRFailed.Inc()
		sp.SetAttr("outcome", "error")
		sp.End()
		return "", err
	}
	_, err = (peerClient{svc: a.ref("peer")}).callTraced(ctx, kind, data, sp.Context())
	// The bridge copied the payload into its wire envelope, so the buffer
	// recycles regardless of the ship's outcome.
	transport.PutBuf(data)
	mWaveShipLatency.Observe(time.Since(start))
	if err != nil {
		if errors.Is(err, ErrNoPeer) {
			sp.SetAttr("outcome", "degraded")
			sp.End()
			coverSpans(batch, "lfr", start, "degraded")
			return "degraded", nil
		}
		mWaveLFRFailed.Inc()
		sp.SetAttr("outcome", "error")
		sp.End()
		return "", err
	}
	sp.SetAttr("outcome", "ok")
	sp.End()
	coverSpans(batch, "lfr", start, "ok")
	return "ok", nil
}

// lfrAckAfter is the follower's After (Table 2 "Process notification"):
// record the computed reply in the follower's own reply log so a
// failover preserves at-most-once semantics, and fold in the leader's
// commit notifications.
type lfrAckAfter struct {
	brickRefs
}

func (a *lfrAckAfter) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	log := logClient{svc: a.ref("log")}
	switch msg.Op {
	case OpRun:
		call, err := callPayload(msg)
		if err != nil {
			return component.Message{}, err
		}
		if err := log.record(ctx, &call.Result); err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", call), nil
	case "commit":
		cm, ok := msg.Payload.(commitMsg)
		if !ok {
			return component.Message{}, fmt.Errorf("ftm: commit payload is %T", msg.Payload)
		}
		if err := log.record(ctx, &cm.Resp); err != nil {
			return component.Message{}, err
		}
		return component.NewMessage("ok", nil), nil
	case "commit.batch":
		switch batch := msg.Payload.(type) {
		case *rpc.ResponseList:
			if err := log.appendList(ctx, batch); err != nil {
				return component.Message{}, err
			}
		case []rpc.Response:
			if err := log.appendBatch(ctx, batch); err != nil {
				return component.Message{}, err
			}
		default:
			return component.Message{}, fmt.Errorf("ftm: commit batch payload is %T", msg.Payload)
		}
		return component.NewMessage("ok", nil), nil
	case OpFlush:
		// The follower has no downstream replica to flush toward.
		return component.NewMessage("ok", nil), nil
	default:
		return component.Message{}, fmt.Errorf("%w: %q on lfr.ack", component.ErrUnknownOp, msg.Op)
	}
}

// --- Standalone TR bricks ---------------------------------------------------

// trCaptureBefore is standalone TR's Before (Table 2 "Capture state").
type trCaptureBefore struct {
	brickRefs
}

func (b *trCaptureBefore) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	snap, err := (stateClient{svc: b.ref("state")}).capture(ctx)
	if err != nil {
		return component.Message{}, fmt.Errorf("ftm: tr.capture: %w", err)
	}
	call.StateSnapshot = snap
	call.HasSnapshot = true
	return component.NewMessage("ok", call), nil
}

// trRestoreAfter is standalone TR's After (Table 2 "Restore state"): when
// the redundant executions could not agree, put the application back in
// its pre-request state so the failed request has no effect.
type trRestoreAfter struct {
	brickRefs
}

func (a *trRestoreAfter) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	if msg.Op == OpFlush {
		// TR is single-host: a logged reply needs no replica coverage.
		return component.NewMessage("ok", nil), nil
	}
	call, err := callPayload(msg)
	if err != nil {
		return component.Message{}, err
	}
	if call.Unrecoverable && call.HasSnapshot {
		if err := (stateClient{svc: a.ref("state")}).restore(ctx, call.StateSnapshot); err != nil {
			return component.Message{}, fmt.Errorf("ftm: tr.restore: %w", err)
		}
	}
	return component.NewMessage("ok", call), nil
}

// brickDefinition returns the Definition template of a variable-feature
// component type: its services, references and deployment bundle.
func brickDefinition(typ string) (component.Definition, error) {
	def := component.Definition{
		Type:     typ,
		Services: []string{SvcSync},
		Bundle:   BundleFor(typ),
	}
	switch typ {
	case core.TypeNop:
	case core.TypeComputeProceed:
		def.Services = []string{SvcExec}
		def.References = []component.Ref{{Name: "server", Required: true}}
	case core.TypeNoProceed:
		def.Services = []string{SvcExec}
	case core.TypeTRProceed:
		def.Services = []string{SvcExec}
		def.References = []component.Ref{
			{Name: "server", Required: true},
			{Name: "state", Required: true},
		}
	case core.TypeAssertProceed:
		def.Services = []string{SvcExec}
		def.References = []component.Ref{
			{Name: "server", Required: true},
			{Name: "assert", Required: true},
		}
	case core.TypePBRCheckpoint:
		def.References = []component.Ref{
			{Name: "state", Required: true},
			{Name: "log", Required: true},
			{Name: "peer", Required: true},
		}
	case core.TypePBRApply:
		def.References = []component.Ref{
			{Name: "state", Required: true},
			{Name: "log", Required: true},
		}
	case core.TypeLFRForward, core.TypeLFRNotify:
		def.References = []component.Ref{{Name: "peer", Required: true}}
	case core.TypeLFRReceive:
	case core.TypeLFRAck:
		def.References = []component.Ref{{Name: "log", Required: true}}
	case core.TypeTRCapture, core.TypeTRRestore:
		def.References = []component.Ref{{Name: "state", Required: true}}
	case core.TypeRBProceed:
		def.Services = []string{SvcExec}
		def.References = []component.Ref{
			{Name: "server", Required: true},
			{Name: "alternate", Required: true},
			{Name: "assert", Required: true},
			{Name: "state", Required: true},
		}
	case core.TypeTMRProceed:
		def.Services = []string{SvcExec}
		def.References = []component.Ref{
			{Name: "server", Required: true},
			{Name: "state", Required: true},
		}
	case core.TypeRecordProceed:
		def.Services = []string{SvcExec}
		def.References = []component.Ref{{Name: "record", Required: true}}
	case core.TypeXPANotify:
		def.References = []component.Ref{{Name: "peer", Required: true}}
	case core.TypeXPAApply:
		def.References = []component.Ref{
			{Name: "replay", Required: true},
			{Name: "log", Required: true},
		}
	default:
		return component.Definition{}, fmt.Errorf("ftm: unknown brick type %q", typ)
	}
	return def, nil
}

// newBrickContent constructs the content of a brick type.
func newBrickContent(typ string) (component.Content, error) {
	switch typ {
	case core.TypeNop:
		return nopBrick{}, nil
	case core.TypeComputeProceed:
		return &computeProceed{}, nil
	case core.TypeNoProceed:
		return noProceed{}, nil
	case core.TypeTRProceed:
		return &trProceed{}, nil
	case core.TypeAssertProceed:
		return &assertProceed{}, nil
	case core.TypePBRCheckpoint:
		return &pbrCheckpointAfter{waves: newWaveNotifier(defaultMaxWave)}, nil
	case core.TypePBRApply:
		return &pbrApplyAfter{}, nil
	case core.TypeLFRForward:
		return &lfrForwardBefore{}, nil
	case core.TypeLFRReceive:
		return lfrReceiveBefore{}, nil
	case core.TypeLFRNotify:
		return &lfrNotifyAfter{waves: newWaveNotifier(defaultMaxWave)}, nil
	case core.TypeLFRAck:
		return &lfrAckAfter{}, nil
	case core.TypeTRCapture:
		return &trCaptureBefore{}, nil
	case core.TypeTRRestore:
		return &trRestoreAfter{}, nil
	case core.TypeRBProceed:
		return &rbProceed{}, nil
	case core.TypeTMRProceed:
		return &tmrProceed{}, nil
	case core.TypeRecordProceed:
		return &recordProceed{}, nil
	case core.TypeXPANotify:
		return &xpaNotify{}, nil
	case core.TypeXPAApply:
		return &xpaApply{}, nil
	default:
		return nil, fmt.Errorf("ftm: unknown brick type %q", typ)
	}
}
