package ftm

import (
	"context"
	"testing"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/fscript"
)

func xpaSystem(t *testing.T, ftmID core.ID) (*System, *Calculator, *Calculator) {
	t.Helper()
	var apps []*Calculator
	cfg := fastConfig(ftmID)
	cfg.AppFactory = func() Application {
		c := NewCalculator()
		apps = append(apps, c)
		return c
	}
	s, err := NewSystem(context.Background(), cfg)
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", ftmID, err)
	}
	t.Cleanup(s.Shutdown)
	return s, apps[0], apps[1]
}

func TestSemiActiveReplaysNondeterministicDecisions(t *testing.T) {
	s, leaderApp, followerApp := xpaSystem(t, core.SemiActive)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	// A non-deterministic operation: the leader draws the value and the
	// follower must REPLAY it, not draw its own.
	drawn := invoke(t, c, "rnd:x", 0)
	waitUntil(t, 2*time.Second, func() bool {
		return followerApp.regs.Get("x") == drawn
	}, "follower never replayed the leader's decision")
	if leaderApp.regs.Get("x") != drawn {
		t.Fatalf("leader state %d != reply %d", leaderApp.regs.Get("x"), drawn)
	}
	// Deterministic operations flow through the same path.
	if got := invoke(t, c, "add:x", 5); got != drawn+5 {
		t.Fatalf("add after rnd = %d, want %d", got, drawn+5)
	}
	waitUntil(t, 2*time.Second, func() bool {
		return followerApp.regs.Get("x") == drawn+5
	}, "follower did not replay the deterministic op")
}

func TestPlainLFRDivergesOnNondeterminism(t *testing.T) {
	// Negative control: under plain LFR both replicas draw independently
	// and diverge — the Table 1 restriction that forbids LFR for
	// non-deterministic applications.
	s, leaderApp, followerApp := xpaSystem(t, core.LFR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	drawn := invoke(t, c, "rnd:x", 0)
	waitUntil(t, 2*time.Second, func() bool {
		return followerApp.regs.Get("x") != 0
	}, "follower never computed")
	if followerApp.regs.Get("x") == drawn {
		t.Skip("independent draws coincided; seeds too aligned for a negative control")
	}
	if leaderApp.regs.Get("x") != drawn {
		t.Fatalf("leader state inconsistent with reply")
	}
}

func TestSemiActiveFailoverPreservesDecision(t *testing.T) {
	s, _, followerApp := xpaSystem(t, core.SemiActive)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	drawn := invoke(t, c, "rnd:x", 0)
	waitUntil(t, 2*time.Second, func() bool {
		return followerApp.regs.Get("x") == drawn
	}, "follower never replayed")

	s.CrashMaster()
	waitUntil(t, 5*time.Second, func() bool { return s.Master() != nil }, "follower never promoted")
	// The promoted follower serves the replayed value, and the reply log
	// replays the original request identity.
	if got := invoke(t, c, "get:x", 0); got != drawn {
		t.Fatalf("value after failover = %d, want %d", got, drawn)
	}
}

func TestSemiActiveAtMostOnceOnFollower(t *testing.T) {
	s, _, _ := xpaSystem(t, core.SemiActive)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "add:x", 3)
	// Redeliver the same identity: the leader replays from its log; the
	// follower must not re-apply either.
	resp, err := c.Redeliver(context.Background(), 1, "add:x", EncodeArg(3))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Replayed {
		t.Fatal("redelivery re-executed")
	}
	if got := invoke(t, c, "get:x", 0); got != 3 {
		t.Fatalf("x = %d, want 3", got)
	}
}

func TestSemiActiveSelectedForNondeterministicNoStateApps(t *testing.T) {
	// The illustrative set has no generic solution for non-deterministic
	// applications without state access (Figure 8's dead end); the
	// semi-active extension fills exactly that gap.
	d, err := core.Select(
		core.NewFaultModel(core.FaultCrash),
		core.AppTraits{Deterministic: false, StateAccess: false},
		core.ResourceState{BandwidthKbps: 10_000, CPUFree: 0.9, Energy: 1, Hosts: 2},
		core.DefaultThresholds())
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if d.ID != core.SemiActive {
		t.Fatalf("Select = %s, want lfr_nd", d.ID)
	}
}

func TestTransitionLFRToSemiActive(t *testing.T) {
	// An OTA update makes the application non-deterministic; instead of
	// falling back to PBR (needs state access), the system transitions to
	// the semi-active extension: swap proceed and syncAfter plus the
	// slave's proceed/syncAfter.
	s, _, followerApp := xpaSystem(t, core.LFR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 1)

	from := core.MustLookup(core.LFR)
	to := core.MustLookup(core.SemiActive)
	if diff := core.Diff(from.MasterScheme, to.MasterScheme); len(diff) != 3 {
		t.Fatalf("LFR -> semi-active replaces %v", diff)
	}
	// Use the adaptation machinery end to end via scripts on both
	// replicas (role-specific schemes).
	for _, r := range s.Replicas() {
		script, env, err := TransitionScript(r.Path(), from.Scheme(r.Role()), to.Scheme(r.Role()))
		if err != nil {
			t.Fatal(err)
		}
		rt := r.Host().Runtime()
		if err := rt.Stop(context.Background(), r.Path()); err != nil {
			t.Fatal(err)
		}
		if _, err := fscriptExecute(rt, script, env); err != nil {
			t.Fatalf("transition on %s: %v", r.Host().Name(), err)
		}
		if err := rt.Start(context.Background(), r.Path()); err != nil {
			t.Fatal(err)
		}
		r.SetFTM(core.SemiActive)
	}
	drawn := invoke(t, c, "rnd:y", 0)
	waitUntil(t, 2*time.Second, func() bool {
		return followerApp.regs.Get("y") == drawn
	}, "follower never replayed after the transition")
}

// fscriptExecute avoids an import cycle in test helper signatures.
func fscriptExecute(rt *component.Runtime, script *fscript.Script, env fscript.Env) (fscript.Result, error) {
	return fscript.Execute(context.Background(), rt, script, env)
}
