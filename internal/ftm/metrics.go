package ftm

import "resilientft/internal/telemetry"

// FTM series, resolved once at init. Stage histograms time the three
// slots of the Before-Proceed-After generic execution scheme; the
// checkpoint counters expose how often the PBR primary ships full state
// versus a delta, and how often the pair falls out of sync.
var (
	mStageBefore  = telemetry.Default().Histogram("ftm_stage_latency", "stage", "before")
	mStageProceed = telemetry.Default().Histogram("ftm_stage_latency", "stage", "proceed")
	mStageAfter   = telemetry.Default().Histogram("ftm_stage_latency", "stage", "after")

	mRequests   = telemetry.Default().Counter("ftm_requests_total")
	mReplayHits = telemetry.Default().Counter("ftm_replay_hits_total")

	mAssertEscalations = telemetry.Default().Counter("ftm_assert_escalations_total")

	mCkptFull       = telemetry.Default().Counter("ftm_checkpoint_total", "kind", "full")
	mCkptDelta      = telemetry.Default().Counter("ftm_checkpoint_total", "kind", "delta")
	mCkptFullBytes  = telemetry.Default().Counter("ftm_checkpoint_bytes_total", "kind", "full")
	mCkptDeltaBytes = telemetry.Default().Counter("ftm_checkpoint_bytes_total", "kind", "delta")

	mApplyFull  = telemetry.Default().Counter("ftm_checkpoint_applied_total", "kind", "full")
	mApplyDelta = telemetry.Default().Counter("ftm_checkpoint_applied_total", "kind", "delta")

	// Group-commit series: waves shipped, the requests they covered, the
	// waves whose ship failed outright (degraded mode is not a failure),
	// and the per-ship batch size distribution (the histogram's unit is a
	// raw count, not nanoseconds).
	mWavePBR         = telemetry.Default().Counter("ftm_commit_wave_total", "kind", "pbr")
	mWaveLFR         = telemetry.Default().Counter("ftm_commit_wave_total", "kind", "lfr")
	mWavePBRRequests = telemetry.Default().Counter("ftm_commit_wave_requests_total", "kind", "pbr")
	mWaveLFRRequests = telemetry.Default().Counter("ftm_commit_wave_requests_total", "kind", "lfr")
	mWavePBRFailed   = telemetry.Default().Counter("ftm_commit_wave_failed_total", "kind", "pbr")
	mWaveLFRFailed   = telemetry.Default().Counter("ftm_commit_wave_failed_total", "kind", "lfr")
	mCkptBatchSize   = telemetry.Default().Histogram("ftm_checkpoint_batch_size")
	// mWaveShipLatency times one covering ship, capture to acknowledgement;
	// the adaptive accumulation window steers on its upper quantiles.
	mWaveShipLatency = telemetry.Default().Histogram("ftm_wave_ship_latency")
	// mAccumWindow is the accumulation window currently in force, in
	// nanoseconds (see accum.go; shared across notifiers, last writer
	// wins — the exported value is a view, not the control state).
	mAccumWindow = telemetry.Default().Gauge("ftm_accum_window_ns")

	mResyncPrimary = telemetry.Default().Counter("ftm_resync_total", "side", "primary")
	mResyncBackup  = telemetry.Default().Counter("ftm_resync_total", "side", "backup")
	mDegraded      = telemetry.Default().Counter("ftm_degraded_total")

	mPromotions    = telemetry.Default().Counter("ftm_promotions_total")
	mDemotions     = telemetry.Default().Counter("ftm_demotions_total")
	mKills         = telemetry.Default().Counter("ftm_kills_total")
	mPeerSuspected = telemetry.Default().Counter("ftm_peer_suspected_total")
	mPeerRestored  = telemetry.Default().Counter("ftm_peer_restored_total")
)
