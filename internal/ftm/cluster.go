package ftm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/host"
	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

// ClusterConfig assembles a multi-replica fault-tolerant system (one
// master, N-1 backups) — the paper's "multiple Backups or Followers"
// variant.
type ClusterConfig struct {
	// System names the protected application.
	System string
	// FTM is the mechanism to deploy (a duplex-based one).
	FTM core.ID
	// Replicas is the group size (>= 2).
	Replicas int
	// AppFactory builds one application instance per replica.
	AppFactory func() Application
	// Net is the network (fresh seeded one when nil).
	Net *transport.MemNetwork
	// HostPrefix names the hosts "<prefix>0", "<prefix>1", ...
	HostPrefix string
	// HeartbeatInterval and SuspectTimeout tune failover speed; the
	// suspect timeout is also the rank stagger unit.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	// EventHook receives replica life-cycle events.
	EventHook func(hostName, event string)
}

// Cluster is a running multi-replica fault-tolerant application.
type Cluster struct {
	Net      *transport.MemNetwork
	Registry *component.Registry

	mu       sync.Mutex
	cfg      ClusterConfig
	members  []transport.Address
	hosts    []*host.Host
	replicas []*Replica
	clients  int
}

// NewCluster boots the group: the rank-0 host is the initial master.
func NewCluster(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Replicas < 2 {
		return nil, fmt.Errorf("ftm: cluster needs at least 2 replicas, got %d", cfg.Replicas)
	}
	if cfg.System == "" {
		cfg.System = "app"
	}
	if cfg.AppFactory == nil {
		cfg.AppFactory = func() Application { return NewCalculator() }
	}
	if cfg.HostPrefix == "" {
		cfg.HostPrefix = "node"
	}
	if cfg.Net == nil {
		cfg.Net = transport.NewMemNetwork(transport.WithSeed(1))
	}
	c := &Cluster{Net: cfg.Net, Registry: NewRegistry(), cfg: cfg}

	for i := 0; i < cfg.Replicas; i++ {
		h, err := host.New(fmt.Sprintf("%s%d", cfg.HostPrefix, i), cfg.Net, c.Registry)
		if err != nil {
			return nil, err
		}
		c.hosts = append(c.hosts, h)
		c.members = append(c.members, h.Addr())
	}
	for i, h := range c.hosts {
		role := core.RoleSlave
		if i == 0 {
			role = core.RoleMaster
		}
		r, err := c.deployReplica(ctx, h, role, c.members[0])
		if err != nil {
			return nil, err
		}
		c.replicas = append(c.replicas, r)
	}
	return c, nil
}

func (c *Cluster) deployReplica(ctx context.Context, h *host.Host, role core.Role, master transport.Address) (*Replica, error) {
	rcfg := ReplicaConfig{
		System:            c.cfg.System,
		FTM:               c.cfg.FTM,
		Role:              role,
		Peer:              master,
		Members:           append([]transport.Address(nil), c.members...),
		App:               c.cfg.AppFactory(),
		HeartbeatInterval: c.cfg.HeartbeatInterval,
		SuspectTimeout:    c.cfg.SuspectTimeout,
	}
	if role == core.RoleMaster {
		rcfg.Peer = ""
	}
	var opts []ReplicaOption
	if c.cfg.EventHook != nil {
		hook := c.cfg.EventHook
		name := h.Name()
		opts = append(opts, WithEventHook(func(e string) { hook(name, e) }))
	}
	return NewReplica(ctx, h, rcfg, opts...)
}

// Members returns the static membership in rank order.
func (c *Cluster) Members() []transport.Address {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]transport.Address(nil), c.members...)
}

// Replicas returns the replicas in rank order.
func (c *Cluster) Replicas() []*Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Replica(nil), c.replicas...)
}

// Hosts returns the hosts in rank order.
func (c *Cluster) Hosts() []*host.Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*host.Host(nil), c.hosts...)
}

// Master returns the live master, or nil.
func (c *Cluster) Master() *Replica {
	for _, r := range c.Replicas() {
		if r != nil && !r.Host().Crashed() && r.Role() == core.RoleMaster {
			return r
		}
	}
	return nil
}

// LiveBackups returns the live slaves in rank order.
func (c *Cluster) LiveBackups() []*Replica {
	var out []*Replica
	for _, r := range c.Replicas() {
		if r != nil && !r.Host().Crashed() && r.Role() == core.RoleSlave {
			out = append(out, r)
		}
	}
	return out
}

// NewClient attaches a client aware of every member.
func (c *Cluster) NewClient(opts ...rpc.ClientOption) (*rpc.Client, error) {
	c.mu.Lock()
	c.clients++
	id := fmt.Sprintf("cclient-%d", c.clients)
	c.mu.Unlock()
	ep, err := c.Net.Endpoint(transport.Address(id))
	if err != nil {
		return nil, err
	}
	addrs := c.Members()
	if m := c.Master(); m != nil {
		// Master-first ordering saves the first round trip.
		reordered := []transport.Address{m.Host().Addr()}
		for _, a := range addrs {
			if a != m.Host().Addr() {
				reordered = append(reordered, a)
			}
		}
		addrs = reordered
	}
	return rpc.NewClient(id, ep, addrs, opts...), nil
}

// CrashMaster crashes the live master's host.
func (c *Cluster) CrashMaster() *Replica {
	m := c.Master()
	if m != nil {
		m.Host().Crash()
	}
	return m
}

// Shutdown crashes every host.
func (c *Cluster) Shutdown() {
	for _, h := range c.Hosts() {
		if h != nil && !h.Crashed() {
			h.Crash()
		}
	}
}
