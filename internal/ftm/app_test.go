package ftm

import (
	"errors"
	"testing"

	"resilientft/internal/appstate"
	"resilientft/internal/faultinject"
)

func TestCalculatorOps(t *testing.T) {
	c := NewCalculator()
	cases := []struct {
		op     string
		arg    int64
		want   int64
		before int64
	}{
		{"set:x", 10, 10, 0},
		{"add:x", 5, 15, 10},
		{"sub:x", 3, 12, 15},
		{"get:x", 0, 12, 12},
		{"add:y", 7, 7, 0},
	}
	for _, tc := range cases {
		got, before, err := c.Process(tc.op, tc.arg)
		if err != nil {
			t.Fatalf("Process(%s, %d): %v", tc.op, tc.arg, err)
		}
		if got != tc.want || before != tc.before {
			t.Fatalf("Process(%s, %d) = (%d, %d), want (%d, %d)",
				tc.op, tc.arg, got, before, tc.want, tc.before)
		}
	}
}

func TestCalculatorBadOps(t *testing.T) {
	c := NewCalculator()
	for _, op := range []string{"", "add", "add:", ":x", "frob:x"} {
		if _, _, err := c.Process(op, 1); !errors.Is(err, ErrBadOp) {
			t.Errorf("Process(%q): err = %v, want ErrBadOp", op, err)
		}
	}
}

func TestCalculatorAssert(t *testing.T) {
	c := NewCalculator()
	// Clean results satisfy the assertion.
	cases := []struct {
		op                  string
		arg, before, result int64
		want                bool
	}{
		{"add:x", 5, 10, 15, true},
		{"add:x", 5, 10, 16, false}, // corrupted result
		{"sub:x", 3, 10, 7, true},
		{"sub:x", 3, 10, 8, false},
		{"set:x", 9, 0, 9, true},
		{"set:x", 9, 0, 8, false},
		{"get:x", 0, 4, 4, true},
		{"get:x", 0, 4, 5, false},
		{"bad-op", 0, 0, 0, false},
	}
	for _, tc := range cases {
		if got := c.Assert(tc.op, tc.arg, tc.before, tc.result); got != tc.want {
			t.Errorf("Assert(%s, %d, %d, %d) = %v, want %v",
				tc.op, tc.arg, tc.before, tc.result, got, tc.want)
		}
	}
}

func TestCalculatorInjectorCorruptsResults(t *testing.T) {
	c := NewCalculator()
	inj := faultinject.NewValueInjector(3)
	c.SetInjector(inj)
	inj.InjectTransient(1)
	result, before, err := c.Process("set:x", 42)
	if err != nil {
		t.Fatal(err)
	}
	if result == 42 {
		t.Fatal("armed injector did not corrupt the result")
	}
	if !errorsAssert(c, "set:x", 42, before, result) {
		// The corrupted result must violate the assertion.
	} else {
		t.Fatal("assertion accepted a corrupted result")
	}
	// State remains clean: corruption models an output bit flip.
	if got := c.regs.Get("x"); got != 42 {
		t.Fatalf("register corrupted: %d", got)
	}
	// Next processing is clean again.
	result, _, _ = c.Process("get:x", 0)
	if result != 42 {
		t.Fatalf("post-fault result = %d", result)
	}
}

func errorsAssert(c *Calculator, op string, arg, before, result int64) bool {
	return c.Assert(op, arg, before, result)
}

func TestCalculatorStateRoundTrip(t *testing.T) {
	c := NewCalculator()
	if _, _, err := c.Process("set:x", 5); err != nil {
		t.Fatal(err)
	}
	snap, err := c.StateManager().CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Process("add:x", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.StateManager().RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	result, _, _ := c.Process("get:x", 0)
	if result != 5 {
		t.Fatalf("restored register = %d, want 5", result)
	}
}

func TestOpaqueWrapperHidesState(t *testing.T) {
	app := Opaque{Application: NewCalculator()}
	if _, err := app.StateManager().CaptureState(); !errors.Is(err, appstate.ErrNoAccess) {
		t.Fatalf("CaptureState through Opaque: err = %v", err)
	}
	// Processing still works.
	if _, _, err := app.Process("set:x", 1); err != nil {
		t.Fatal(err)
	}
}

func TestNonDeterministicWrapper(t *testing.T) {
	app := NonDeterministic{Application: NewCalculator()}
	if app.Deterministic() {
		t.Fatal("wrapper reports deterministic")
	}
	if _, _, err := app.Process("set:x", 1); err != nil {
		t.Fatal(err)
	}
}

func TestResultCodec(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 62, -(1 << 62)} {
		got, err := DecodeResult(EncodeResult(v))
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
	if _, err := DecodeResult([]byte{1, 2}); err == nil {
		t.Fatal("DecodeResult accepted short payload")
	}
}
