package ftm

import (
	"context"
	"strings"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

// TestFastRestartOfCrashedMasterMintsOneMaster pins the masterless-pair
// recovery found by the chaos campaign: when a crashed master is
// restarted before the slave's failure detector accrues enough silence
// to suspect it, no suspicion edge ever fires — the slave never
// promotes, the restarted host rejoins as a slave, and the pair used to
// sit masterless forever (every recovery path downstream of the
// detector is edge-triggered). RestartReplica must detect the
// masterless pair and promote the survivor, whose state is
// authoritative.
func TestFastRestartOfCrashedMasterMintsOneMaster(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 41)
	invoke(t, c, "add:x", 1) // shipped to the slave before the crash

	idx := s.CrashMaster()
	if idx < 0 {
		t.Fatal("no master to crash")
	}
	// Restart immediately: well inside the 60ms suspect timeout, so the
	// slave's detector never saw an edge.
	r, err := s.RestartReplica(context.Background(), idx)
	if err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	waitUntil(t, 5*time.Second, func() bool { return s.Master() != nil },
		"masterless pair never recovered a master")
	// The survivor, not the amnesiac restarter, must hold mastership.
	if m := s.Master(); m == r {
		t.Fatalf("restarted replica %s took mastership from the survivor", m.Host().Name())
	}
	// The acknowledged writes survived the churn.
	waitUntil(t, 5*time.Second, func() bool {
		resp, err := c.Invoke(context.Background(), "get:x", EncodeArg(0))
		if err != nil {
			return false
		}
		v, _ := DecodeResult(resp.Payload)
		return v == 42
	}, "state lost across fast master restart")
	// And the reply log too: redelivering the pre-crash write replays.
	resp, err := c.Redeliver(context.Background(), 2, "add:x", EncodeArg(1))
	if err != nil {
		t.Fatalf("redeliver: %v", err)
	}
	if !resp.Replayed {
		t.Fatal("pre-crash acked write re-executed instead of replaying")
	}
}

// TestSoleSurvivorRestartBecomesMaster covers the degenerate corner of
// the same recovery: both hosts down, one restarted — it has no
// survivor to defer to and must take mastership itself.
func TestSoleSurvivorRestartBecomesMaster(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	s.CrashSlave()
	idx := s.CrashMaster()
	r, err := s.RestartReplica(context.Background(), idx)
	if err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	waitUntil(t, 5*time.Second, func() bool { return s.Master() == r },
		"sole survivor never took mastership")
}

// TestRejoinUnderLFRTransfersStateAndReplyLog pins the rejoin-sync fix:
// the checkpoint pull rides the protocol's fixed state and reply-log
// features, so it works under every mechanism — a slave restarted while
// the system runs a no-state-access FTM must still receive the
// application state and the reply log. Rejoining blind (the old
// NeedsStateAccess gate) lost both, and a later failover re-executed
// every previously acknowledged write.
func TestRejoinUnderLFRTransfersStateAndReplyLog(t *testing.T) {
	s := newTestSystem(t, core.LFR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		invoke(t, c, "add:x", 1) // seqs 1..4, acked under LFR
	}

	idx := s.CrashSlave()
	if idx < 0 {
		t.Fatal("no slave to crash")
	}
	invoke(t, c, "add:x", 1) // seq 5: progress while the slave is down
	if _, err := s.RestartReplica(context.Background(), idx); err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}

	// Fail over to the rejoined slave; its synced reply log must replay
	// every acked write with the value the client originally saw.
	s.CrashMaster()
	waitUntil(t, 5*time.Second, func() bool { return s.Master() != nil },
		"no promotion after master crash")
	for seq := uint64(1); seq <= 5; seq++ {
		resp, err := c.Redeliver(context.Background(), seq, "add:x", EncodeArg(1))
		if err != nil {
			t.Fatalf("redeliver seq %d: %v", seq, err)
		}
		if !resp.Replayed {
			t.Fatalf("seq %d re-executed after rejoin+failover: reply log was not transferred", seq)
		}
		v, err := DecodeResult(resp.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(seq) {
			t.Fatalf("seq %d replayed value %d, want %d", seq, v, seq)
		}
	}
	if got := invoke(t, c, "get:x", 0); got != 5 {
		t.Fatalf("state after rejoin+failover = %d, want 5", got)
	}
}

// TestPromotionResolvesSplitBrainProactively pins the promotion-time
// split-brain check. A promotion can complete into split brain with no
// detector edge left to fire — e.g. a partition that heals while the
// promotion's fscript is still running, so the peer-restored edge finds
// the usurper not-yet-master and resolves nothing. The deterministic
// shape of that hole: promote the slave while the master is alive and
// reachable. No suspicion ever fired, so no edge ever will; only the
// check Promote itself runs on completion can discover the senior
// master and step back down.
func TestPromotionResolvesSplitBrainProactively(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 5)

	usurper := s.Replicas()[1]
	if err := usurper.Promote(context.Background()); err != nil {
		t.Fatalf("spurious promotion: %v", err)
	}
	waitUntil(t, 5*time.Second, func() bool {
		evs := usurper.Events()
		return containsEvent(evs, "promoted to master") &&
			containsEvent(evs, "demoted to slave")
	}, "usurper never resolved its own spurious mastership")
	if role := usurper.Role(); role != core.RoleSlave {
		t.Fatalf("usurper settled as %s, want slave", role)
	}
	if m := s.Master(); m != s.Replicas()[0] {
		t.Fatal("senior master lost mastership to the usurper")
	}
	// Post-demotion sync ran; state is intact and the pair still serves.
	if got := invoke(t, c, "get:x", 0); got != 5 {
		t.Fatalf("state after split-brain episode = %d, want 5", got)
	}
	invoke(t, c, "add:x", 1)
	if got := invoke(t, c, "get:x", 0); got != 6 {
		t.Fatal("pair stopped serving writes after the episode")
	}
}

// TestClientRedeliveryUnderCallLoss pins at-most-once under a lossy
// client->master link: calls whose request or reply leg vanishes leave
// the client unsure whether the write executed; its retries re-send the
// same sequence number and the reply log must collapse duplicates, so
// the register advances exactly once per sequence number no matter how
// many deliveries the loss forced.
func TestClientRedeliveryUnderCallLoss(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	c, err := s.NewClient(rpc.WithCallTimeout(100*time.Millisecond), rpc.WithMaxRounds(25))
	if err != nil {
		t.Fatal(err)
	}
	master := s.Master().Host().Addr()
	clientAddr := transport.Address(c.ID())
	// Drop calls in both directions between this client and the master:
	// request-leg losses (handler never ran) and reply-leg losses (the
	// executed-but-unacknowledged shape retry deduplication exists for).
	s.Net.SetLinkFault(clientAddr, master, transport.LinkFault{DropCalls: 0.4})
	s.Net.SetLinkFault(master, clientAddr, transport.LinkFault{DropCalls: 0.4})

	const writes = 12
	for i := 1; i <= writes; i++ {
		got := invoke(t, c, "add:x", 1)
		if got != int64(i) {
			t.Fatalf("write %d: register answered %d — a lost call re-executed", i, got)
		}
	}
	s.Net.ClearLinkFaults()
	if got := invoke(t, c, "get:x", 0); got != writes {
		t.Fatalf("final register = %d, want %d", got, writes)
	}
}

func containsEvent(events []string, want string) bool {
	for _, e := range events {
		if strings.Contains(e, want) {
			return true
		}
	}
	return false
}
