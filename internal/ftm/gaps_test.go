package ftm

import (
	"context"
	"errors"
	"testing"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/fscript"
)

func TestDeployValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  ReplicaConfig
	}{
		{"missing system", ReplicaConfig{FTM: core.PBR, Role: core.RoleMaster, App: NewCalculator()}},
		{"missing app", ReplicaConfig{System: "x", FTM: core.PBR, Role: core.RoleMaster}},
		{"unknown ftm", ReplicaConfig{System: "x", FTM: "bogus", Role: core.RoleMaster, App: NewCalculator()}},
		{"bad role", ReplicaConfig{System: "x", FTM: core.PBR, Role: "viceroy", App: NewCalculator()}},
	}
	s := newTestSystem(t, core.PBR) // reuse a live host
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DeployFTM(context.Background(), s.Hosts()[0], tc.cfg, nil); err == nil {
				t.Fatal("invalid config deployed")
			}
		})
	}
}

func TestDetectorStatusService(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	master := s.Master()
	rt := master.Host().Runtime()
	det, err := rt.Lookup(master.Path() + "/" + NameDetector)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := det.ServiceEndpoint("status")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := svc.Invoke(context.Background(), component.NewMessage("query", nil))
	if err != nil {
		t.Fatal(err)
	}
	if suspected, _ := reply.Payload.(bool); suspected {
		t.Fatal("healthy peer reported suspected")
	}
	s.CrashSlave()
	waitUntil(t, 5*time.Second, func() bool {
		reply, err := svc.Invoke(context.Background(), component.NewMessage("query", nil))
		if err != nil {
			return false
		}
		suspected, _ := reply.Payload.(bool)
		return suspected
	}, "detector status never reported the crashed peer")
}

func TestDetectorStopsOnComponentStop(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	master := s.Master()
	rt := master.Host().Runtime()
	// Stopping the detector component runs OnStop (halting its loops);
	// restarting brings them back.
	if err := rt.Stop(context.Background(), master.Path()+"/"+NameDetector); err != nil {
		t.Fatalf("stop detector: %v", err)
	}
	if err := rt.Start(context.Background(), master.Path()+"/"+NameDetector); err != nil {
		t.Fatalf("restart detector: %v", err)
	}
	// Failover still works with the restarted detector.
	s.CrashSlave()
	waitUntil(t, 5*time.Second, func() bool {
		return s.Master() != nil && s.Master() == master
	}, "master lost after detector restart")
}

func TestReplicaKill(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	slave := s.Slave()
	slave.Kill()
	if !slave.Host().Crashed() {
		t.Fatal("Kill did not crash the host")
	}
}

func TestRBRangeAcceptance(t *testing.T) {
	s, app := rbSystem(t, core.RBPBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	master := s.Master()
	rt := master.Host().Runtime()
	// A range acceptance test: results beyond the bound are rejected and
	// recovered through the alternate... which computes the same large
	// value, so the request fails rather than answering out-of-range.
	script := fscript.MustParse(`set rb/proceed.acceptance = "range:1000"`)
	if _, err := fscript.Execute(context.Background(), rt, script, fscript.Env{}); err != nil {
		t.Fatal(err)
	}
	if got := invoke(t, c, "set:x", 999); got != 999 {
		t.Fatalf("in-range set = %d", got)
	}
	_, err = c.Invoke(context.Background(), "set:x", EncodeArg(5000))
	if err == nil {
		t.Fatal("out-of-range result accepted by the range test")
	}
	// The failed request rolled back: x is still 999.
	if got := invoke(t, c, "get:x", 0); got != 999 {
		t.Fatalf("state after rejected request = %d, want 999", got)
	}
	_ = app
}

func TestUnknownReplicaMessage(t *testing.T) {
	s := newTestSystem(t, core.PBR)
	svc, err := s.Master().boundary(SvcReplica)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(context.Background(), component.Message{Op: "bogus.kind"}); !errors.Is(err, component.ErrUnknownOp) {
		t.Fatalf("err = %v, want ErrUnknownOp", err)
	}
}

func TestProtocolPropertyValidation(t *testing.T) {
	p := newProtocolContent("sys")
	if err := p.SetProperty("role", 42); err == nil {
		t.Error("numeric role accepted")
	}
	if err := p.SetProperty("control", "not-a-control"); err == nil {
		t.Error("bogus control accepted")
	}
	if err := p.SetProperty("assertLimit", "three"); err == nil {
		t.Error("bogus assertLimit accepted")
	}
	if err := p.SetProperty("masterAlone", 1); err == nil {
		t.Error("bogus masterAlone accepted")
	}
	if err := p.SetProperty("assertLimit", 5); err != nil {
		t.Errorf("valid assertLimit rejected: %v", err)
	}
	if err := p.SetProperty("role", core.RoleMaster); err != nil {
		t.Errorf("typed role rejected: %v", err)
	}
	if p.Role() != core.RoleMaster {
		t.Error("role not applied")
	}
}

func TestTMRDeciderValidation(t *testing.T) {
	p := &tmrProceed{}
	if err := p.SetProperty("decider", "coin-flip"); err == nil {
		t.Error("bogus decider accepted")
	}
	if err := p.SetProperty("decider", 7); err == nil {
		t.Error("numeric decider accepted")
	}
	if err := p.SetProperty("decider", DecideMedian); err != nil {
		t.Errorf("valid decider rejected: %v", err)
	}
	// Unrelated properties are inert.
	if err := p.SetProperty("color", "red"); err != nil {
		t.Errorf("unrelated property rejected: %v", err)
	}
}
