package host

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/stablestore"
	"resilientft/internal/telemetry"
)

// Graded host health (the gpud model): instead of one crashed/alive
// bit, every resource dimension has its own collector producing a
// Healthy/Degraded/Unhealthy verdict with a machine-readable reason,
// and the host aggregates them worst-of into a report that remembers
// what caused the last transitions. The monitoring engine probes the
// aggregate; the adaptation engine reads the report to decide where
// replicas may live and which FTM the master can afford — measured
// state, not the declared numbers of the resource model.

// Verdict is a graded health state. The zero value is Healthy so an
// unchecked dimension never fails a host by default.
type Verdict int

const (
	// Healthy: the dimension is within its normal operating envelope.
	Healthy Verdict = iota
	// Degraded: usable but outside the envelope — adaptation should
	// prefer alternatives but need not act immediately.
	Degraded
	// Unhealthy: the dimension cannot support its role; adaptation
	// must route around the host.
	Unhealthy
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Unhealthy:
		return "unhealthy"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// MarshalJSON encodes the verdict as its name, so /health and mgmt
// replies read as words, not enum ordinals.
func (v Verdict) MarshalJSON() ([]byte, error) { return json.Marshal(v.String()) }

// UnmarshalJSON decodes a verdict name.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "healthy":
		*v = Healthy
	case "degraded":
		*v = Degraded
	case "unhealthy":
		*v = Unhealthy
	default:
		return fmt.Errorf("host: unknown verdict %q", s)
	}
	return nil
}

// CheckResult is one collector's output: the graded verdict plus a
// machine-readable reason of the form "field=value threshold=value"
// that operators and tests can parse without regexes over prose.
type CheckResult struct {
	Verdict Verdict `json:"verdict"`
	Reason  string  `json:"reason,omitempty"`
}

// Collector measures one health dimension of a host. Collect must be
// safe for concurrent use and cheap enough to run on a periodic sweep
// (it is never on the request hot path).
type Collector interface {
	Name() string
	Collect() CheckResult
}

// CollectorFunc adapts a closure into a named Collector.
type CollectorFunc struct {
	CollectorName string
	Fn            func() CheckResult
}

// Name returns the collector name.
func (c CollectorFunc) Name() string { return c.CollectorName }

// Collect runs the closure.
func (c CollectorFunc) Collect() CheckResult { return c.Fn() }

// CollectorStatus is one collector's latest result in a report.
type CollectorStatus struct {
	Name      string    `json:"name"`
	Verdict   Verdict   `json:"verdict"`
	Reason    string    `json:"reason,omitempty"`
	CheckedAt time.Time `json:"checked_at"`
}

// HealthTransition records one overall-verdict flip and its cause (the
// collector and reason that moved the needle).
type HealthTransition struct {
	Time  time.Time `json:"time"`
	From  Verdict   `json:"from"`
	To    Verdict   `json:"to"`
	Cause string    `json:"cause"`
}

// Report is a host's aggregated health: the worst-of overall verdict,
// every collector's latest result, and the recent transition causes.
type Report struct {
	Host        string             `json:"host"`
	Overall     Verdict            `json:"overall"`
	Collectors  []CollectorStatus  `json:"collectors"`
	Transitions []HealthTransition `json:"transitions,omitempty"`
	GeneratedAt time.Time          `json:"generated_at"`
}

// transitionHistory bounds the per-host flip log retained in reports.
const transitionHistory = 16

// Health-series metrics. The overall and per-collector gauges encode
// the verdict ordinal (0 healthy, 1 degraded, 2 unhealthy) so a flip
// is a visible step in any scrape; the transition counter splits by
// destination verdict.
func hostHealthGauge(host string) *telemetry.Gauge {
	return telemetry.Default().Gauge("host_health", "host", host)
}

func collectorHealthGauge(host, collector string) *telemetry.Gauge {
	return telemetry.Default().Gauge("host_health_collector", "host", host, "collector", collector)
}

func healthTransitionCounter(to Verdict) *telemetry.Counter {
	return telemetry.Default().Counter("host_health_transitions_total", "to", to.String())
}

// HealthMonitor aggregates a host's collectors into a graded report.
// Collectors may be registered at any time (the heartbeat-quality
// collector arrives only once a detector runs on the host).
type HealthMonitor struct {
	host string

	mu          sync.Mutex
	collectors  []Collector
	last        map[string]CollectorStatus
	overall     Verdict
	transitions []HealthTransition

	stop chan struct{}
	done chan struct{}
	now  func() time.Time
}

// NewHealthMonitor returns a monitor for the named host with no
// collectors registered.
func NewHealthMonitor(host string) *HealthMonitor {
	return &HealthMonitor{
		host: host,
		last: make(map[string]CollectorStatus),
		now:  time.Now,
	}
}

// Register adds a collector. A collector with the same name replaces
// the earlier registration (re-deployment refreshes the heartbeat
// collector rather than stacking stale ones).
func (m *HealthMonitor) Register(c Collector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, existing := range m.collectors {
		if existing.Name() == c.Name() {
			m.collectors[i] = c
			return
		}
	}
	m.collectors = append(m.collectors, c)
}

// Unregister removes the named collector and its last result.
func (m *HealthMonitor) Unregister(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, c := range m.collectors {
		if c.Name() == name {
			m.collectors = append(m.collectors[:i], m.collectors[i+1:]...)
			break
		}
	}
	delete(m.last, name)
}

// Check runs every collector once, updates the gauges, emits a trace
// event (and increments the transition counter) on every overall flip,
// and returns the fresh aggregate verdict.
func (m *HealthMonitor) Check() Verdict {
	m.mu.Lock()
	collectors := append([]Collector(nil), m.collectors...)
	now := m.now()
	m.mu.Unlock()

	// Collect outside the lock: a slow collector (a timed store probe)
	// must not block report reads.
	results := make([]CollectorStatus, 0, len(collectors))
	worst := Healthy
	cause := ""
	for _, c := range collectors {
		r := c.Collect()
		results = append(results, CollectorStatus{
			Name: c.Name(), Verdict: r.Verdict, Reason: r.Reason, CheckedAt: now,
		})
		if r.Verdict > worst {
			worst = r.Verdict
			cause = c.Name() + ": " + r.Reason
		}
		collectorHealthGauge(m.host, c.Name()).Set(int64(r.Verdict))
	}
	hostHealthGauge(m.host).Set(int64(worst))

	m.mu.Lock()
	for _, r := range results {
		m.last[r.Name] = r
	}
	prev := m.overall
	if worst != prev {
		m.overall = worst
		if cause == "" {
			cause = "all collectors healthy"
		}
		tr := HealthTransition{Time: now, From: prev, To: worst, Cause: cause}
		m.transitions = append(m.transitions, tr)
		if len(m.transitions) > transitionHistory {
			m.transitions = m.transitions[len(m.transitions)-transitionHistory:]
		}
		m.mu.Unlock()
		healthTransitionCounter(worst).Inc()
		telemetry.Emit("health", worst.String(), 0,
			"host", m.host, "from", prev.String(), "cause", cause)
		return worst
	}
	m.mu.Unlock()
	return worst
}

// Overall returns the aggregate verdict from the latest Check (Healthy
// before any).
func (m *HealthMonitor) Overall() Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.overall
}

// Report snapshots the latest results without re-running collectors.
func (m *HealthMonitor) Report() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := Report{
		Host:        m.host,
		Overall:     m.overall,
		GeneratedAt: m.now(),
	}
	// Report collectors in registration order for stable output.
	for _, c := range m.collectors {
		if st, ok := m.last[c.Name()]; ok {
			rep.Collectors = append(rep.Collectors, st)
		} else {
			rep.Collectors = append(rep.Collectors, CollectorStatus{Name: c.Name()})
		}
	}
	rep.Transitions = append([]HealthTransition(nil), m.transitions...)
	return rep
}

// Start begins periodic checks at the given interval (a conservative
// 1s when non-positive). The sweep runs off the request path entirely.
func (m *HealthMonitor) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.stop, m.done = stop, done
	m.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.Check()
			}
		}
	}()
}

// Stop halts the periodic checks.
func (m *HealthMonitor) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// gradeLow grades a "higher is better" measurement against two floor
// thresholds.
func gradeLow(name string, value, degradedBelow, unhealthyBelow float64) CheckResult {
	switch {
	case value < unhealthyBelow:
		return CheckResult{Unhealthy, fmt.Sprintf("%s=%.3f min=%.3f", name, value, unhealthyBelow)}
	case value < degradedBelow:
		return CheckResult{Degraded, fmt.Sprintf("%s=%.3f low=%.3f", name, value, degradedBelow)}
	default:
		return CheckResult{Healthy, fmt.Sprintf("%s=%.3f", name, value)}
	}
}

// NewCPUCollector grades the resource model's free-CPU fraction.
func NewCPUCollector(res *Resources, degradedBelow, unhealthyBelow float64) Collector {
	return CollectorFunc{"cpu", func() CheckResult {
		return gradeLow("cpu_free", res.CPUFree(), degradedBelow, unhealthyBelow)
	}}
}

// NewBandwidthCollector grades the available bandwidth in kbit/s.
func NewBandwidthCollector(res *Resources, degradedBelowKbps, unhealthyBelowKbps float64) Collector {
	return CollectorFunc{"bandwidth", func() CheckResult {
		return gradeLow("bandwidth_kbps", res.Bandwidth(), degradedBelowKbps, unhealthyBelowKbps)
	}}
}

// NewEnergyCollector grades the remaining energy budget fraction.
func NewEnergyCollector(res *Resources, degradedBelow, unhealthyBelow float64) Collector {
	return CollectorFunc{"energy", func() CheckResult {
		return gradeLow("energy", res.Energy(), degradedBelow, unhealthyBelow)
	}}
}

// NewStableStoreCollector probes stable storage with a timed read and
// grades the measured latency and the store's fullness (committed
// records for system against softCap). A store that answers slowly is
// degraded before it is full; a failing read is unhealthy outright.
func NewStableStoreCollector(store stablestore.Store, system string, degradedLatency time.Duration, softCap int) Collector {
	if degradedLatency <= 0 {
		degradedLatency = 50 * time.Millisecond
	}
	if softCap <= 0 {
		softCap = 4096
	}
	return CollectorFunc{"stablestore", func() CheckResult {
		t0 := time.Now()
		recs, err := store.History(system)
		lat := time.Since(t0)
		if err != nil {
			return CheckResult{Unhealthy, fmt.Sprintf("read_err=%q", err)}
		}
		if lat >= 4*degradedLatency {
			return CheckResult{Unhealthy, fmt.Sprintf("latency=%s max=%s", lat, 4*degradedLatency)}
		}
		if lat >= degradedLatency {
			return CheckResult{Degraded, fmt.Sprintf("latency=%s slow=%s", lat, degradedLatency)}
		}
		if len(recs) >= softCap {
			return CheckResult{Degraded, fmt.Sprintf("records=%d cap=%d", len(recs), softCap)}
		}
		return CheckResult{Healthy, fmt.Sprintf("latency=%s records=%d", lat, len(recs))}
	}}
}

// NewHeartbeatCollector grades heartbeat quality from a φ source (the
// failure detector's worst per-peer suspicion level): the same accrual
// scale the detector suspects on, read as a health dimension so a host
// whose peers are drifting silent degrades before anything is evicted.
func NewHeartbeatCollector(maxPhi func() float64, degradedPhi, unhealthyPhi float64) Collector {
	if degradedPhi <= 0 {
		degradedPhi = 4
	}
	if unhealthyPhi <= degradedPhi {
		unhealthyPhi = 2 * degradedPhi
	}
	return CollectorFunc{"heartbeat", func() CheckResult {
		phi := maxPhi()
		switch {
		case phi >= unhealthyPhi:
			return CheckResult{Unhealthy, fmt.Sprintf("phi=%.2f max=%.2f", phi, unhealthyPhi)}
		case phi >= degradedPhi:
			return CheckResult{Degraded, fmt.Sprintf("phi=%.2f high=%.2f", phi, degradedPhi)}
		default:
			return CheckResult{Healthy, fmt.Sprintf("phi=%.2f", phi)}
		}
	}}
}

// defaultCollectors wires the declared-resource and stable-store
// dimensions every host has from boot. Thresholds are deliberately
// generous: the default envelope flags starvation, not load.
func defaultCollectors(h *Host) []Collector {
	return []Collector{
		NewCPUCollector(h.res, 0.20, 0.05),
		NewBandwidthCollector(h.res, 1000, 100),
		NewEnergyCollector(h.res, 0.20, 0.05),
		NewStableStoreCollector(h.store, "", 50*time.Millisecond, 4096),
	}
}
