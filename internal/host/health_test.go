package host

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

func testHost(t *testing.T) *Host {
	t.Helper()
	n := transport.NewMemNetwork()
	h, err := New("h-"+t.Name(), n, component.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHostBootsHealthy(t *testing.T) {
	h := testHost(t)
	if got := h.Health().Check(); got != Healthy {
		t.Fatalf("fresh host overall = %v, want healthy (report %+v)", got, h.Health().Report())
	}
	rep := h.Health().Report()
	if len(rep.Collectors) < 4 {
		t.Fatalf("default collectors = %d, want cpu/bandwidth/energy/stablestore", len(rep.Collectors))
	}
	for _, c := range rep.Collectors {
		if c.Verdict != Healthy {
			t.Fatalf("collector %s = %v (%s), want healthy", c.Name, c.Verdict, c.Reason)
		}
	}
}

func TestVerdictGradesAndReasons(t *testing.T) {
	h := testHost(t)
	h.Resources().SetCPUFree(0.10) // below 0.20 degraded floor, above 0.05
	if got := h.Health().Check(); got != Degraded {
		t.Fatalf("overall = %v with cpu at 0.10, want degraded", got)
	}
	h.Resources().SetCPUFree(0.01)
	if got := h.Health().Check(); got != Unhealthy {
		t.Fatalf("overall = %v with cpu at 0.01, want unhealthy", got)
	}
	rep := h.Health().Report()
	var cpu CollectorStatus
	for _, c := range rep.Collectors {
		if c.Name == "cpu" {
			cpu = c
		}
	}
	if cpu.Verdict != Unhealthy {
		t.Fatalf("cpu collector = %v, want unhealthy", cpu.Verdict)
	}
	if !strings.Contains(cpu.Reason, "cpu_free=") || !strings.Contains(cpu.Reason, "min=") {
		t.Fatalf("cpu reason %q not machine-readable (want cpu_free=... min=...)", cpu.Reason)
	}
}

func TestWorstOfAggregation(t *testing.T) {
	h := testHost(t)
	h.Resources().SetBandwidth(500) // degraded
	h.Resources().SetEnergy(0.01)   // unhealthy
	if got := h.Health().Check(); got != Unhealthy {
		t.Fatalf("overall = %v, want worst-of unhealthy", got)
	}
}

func TestTransitionCausesRecorded(t *testing.T) {
	h := testHost(t)
	h.Health().Check()
	h.Resources().SetEnergy(0.01)
	h.Health().Check()
	h.Resources().SetEnergy(1.0)
	h.Health().Check()

	rep := h.Health().Report()
	if len(rep.Transitions) != 2 {
		t.Fatalf("transitions = %+v, want degrade then recover", rep.Transitions)
	}
	down, up := rep.Transitions[0], rep.Transitions[1]
	if down.To != Unhealthy || !strings.Contains(down.Cause, "energy") {
		t.Fatalf("degrade transition %+v, want to=unhealthy cause mentioning energy", down)
	}
	if up.To != Healthy || up.From != Unhealthy {
		t.Fatalf("recovery transition %+v, want unhealthy->healthy", up)
	}
}

func TestVerdictFlipEmitsTraceAndMetrics(t *testing.T) {
	h := testHost(t)
	mark := telemetry.DefaultTracer().Mark()
	before := telemetry.Default().Counter("host_health_transitions_total", "to", "unhealthy").Value()

	h.Resources().SetCPUFree(0.0)
	h.Health().Check()

	if got := telemetry.Default().Counter("host_health_transitions_total", "to", "unhealthy").Value(); got != before+1 {
		t.Fatalf("transition counter = %d, want %d", got, before+1)
	}
	var found bool
	for _, e := range telemetry.DefaultTracer().Since(mark) {
		if e.Kind == "health" && e.Name == "unhealthy" && e.Attrs["host"] == h.Name() {
			found = true
			if !strings.Contains(e.Attrs["cause"], "cpu") {
				t.Fatalf("trace event cause %q, want the cpu collector", e.Attrs["cause"])
			}
		}
	}
	if !found {
		t.Fatal("verdict flip emitted no health trace event")
	}
	if g := telemetry.Default().Gauge("host_health", "host", h.Name()).Value(); g != int64(Unhealthy) {
		t.Fatalf("host_health gauge = %d, want %d", g, int64(Unhealthy))
	}
}

func TestHeartbeatCollectorGradesPhi(t *testing.T) {
	phi := 0.0
	c := NewHeartbeatCollector(func() float64 { return phi }, 4, 8)
	if r := c.Collect(); r.Verdict != Healthy {
		t.Fatalf("phi 0 -> %v, want healthy", r.Verdict)
	}
	phi = 5
	if r := c.Collect(); r.Verdict != Degraded {
		t.Fatalf("phi 5 -> %v, want degraded", r.Verdict)
	}
	phi = 20
	if r := c.Collect(); r.Verdict != Unhealthy {
		t.Fatalf("phi 20 -> %v, want unhealthy", r.Verdict)
	}
}

func TestRegisterReplacesByName(t *testing.T) {
	m := NewHealthMonitor("x")
	m.Register(CollectorFunc{"dim", func() CheckResult { return CheckResult{Unhealthy, "old"} }})
	m.Register(CollectorFunc{"dim", func() CheckResult { return CheckResult{Healthy, "new"} }})
	if got := m.Check(); got != Healthy {
		t.Fatalf("overall = %v, want the replacement collector's healthy", got)
	}
	if rep := m.Report(); len(rep.Collectors) != 1 {
		t.Fatalf("collectors = %+v, want the single replaced entry", rep.Collectors)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	h := testHost(t)
	h.Resources().SetCPUFree(0.10)
	h.Health().Check()
	data, err := json.Marshal(h.Health().Report())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"overall":"degraded"`) {
		t.Fatalf("report JSON %s does not spell the verdict", data)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if rep.Overall != Degraded {
		t.Fatalf("round-tripped overall = %v, want degraded", rep.Overall)
	}
}

func TestPeriodicSweep(t *testing.T) {
	h := testHost(t)
	h.Health().Start(5 * time.Millisecond)
	defer h.Health().Stop()
	h.Resources().SetEnergy(0.01)
	deadline := time.After(2 * time.Second)
	for h.Health().Overall() != Unhealthy {
		select {
		case <-deadline:
			t.Fatalf("sweep never noticed the energy drain (overall %v)", h.Health().Overall())
		case <-time.After(time.Millisecond):
		}
	}
}
