package host

import (
	"context"
	"errors"
	"testing"

	"resilientft/internal/component"
	"resilientft/internal/stablestore"
	"resilientft/internal/transport"
)

func TestHostBoots(t *testing.T) {
	net := transport.NewMemNetwork()
	h, err := New("alpha", net, component.NewRegistry())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if h.Name() != "alpha" || h.Addr() != "alpha" {
		t.Fatalf("identity: %s / %s", h.Name(), h.Addr())
	}
	if h.Crashed() {
		t.Fatal("fresh host crashed")
	}
	if h.Runtime() == nil || h.Endpoint() == nil {
		t.Fatal("missing runtime or endpoint")
	}
}

func TestDuplicateHostNameRefused(t *testing.T) {
	net := transport.NewMemNetwork()
	if _, err := New("alpha", net, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := New("alpha", net, nil); err == nil {
		t.Fatal("duplicate host name accepted")
	}
}

func TestCrashSilencesHost(t *testing.T) {
	net := transport.NewMemNetwork()
	h, err := New("alpha", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Endpoint().Handle("ping", func(ctx context.Context, p transport.Packet) ([]byte, error) {
		return []byte("pong"), nil
	})
	other, _ := net.Endpoint("other")
	if _, err := other.Call(context.Background(), "alpha", "ping", nil); err != nil {
		t.Fatalf("pre-crash Call: %v", err)
	}

	tripped := false
	h.CrashSwitch().OnTrip(func() { tripped = true })
	h.Crash()
	if !h.Crashed() || !tripped {
		t.Fatal("crash did not propagate")
	}
	if h.Runtime() != nil {
		t.Fatal("runtime survived the crash")
	}
	if _, err := other.Call(context.Background(), "alpha", "ping", nil); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("post-crash Call: err = %v, want ErrUnreachable", err)
	}
}

func TestRestartReattaches(t *testing.T) {
	net := transport.NewMemNetwork()
	h, err := New("alpha", net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Restart(); err == nil {
		t.Fatal("Restart of a live host accepted")
	}
	if err := h.Store().Commit(rec("app", "pbr", 1)); err != nil {
		t.Fatal(err)
	}
	h.Crash()
	if err := h.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if h.Crashed() {
		t.Fatal("host still crashed after restart")
	}
	if h.Restarts() != 1 {
		t.Fatalf("Restarts = %d", h.Restarts())
	}
	if h.Runtime() == nil {
		t.Fatal("no fresh runtime after restart")
	}
	// Stable storage survives the crash (that is its point).
	cur, ok, err := h.Store().Current("app")
	if err != nil || !ok || cur.FTM != "pbr" {
		t.Fatalf("stable store after restart: %+v %v %v", cur, ok, err)
	}
	// The endpoint answers again.
	h.Endpoint().Handle("ping", func(ctx context.Context, p transport.Packet) ([]byte, error) {
		return []byte("pong"), nil
	})
	other, _ := net.Endpoint("other")
	if _, err := other.Call(context.Background(), "alpha", "ping", nil); err != nil {
		t.Fatalf("post-restart Call: %v", err)
	}
}

func TestResourcesModel(t *testing.T) {
	r := NewResources(5000, 0.8, 1.0)
	if r.Bandwidth() != 5000 || r.CPUFree() != 0.8 || r.Energy() != 1.0 {
		t.Fatal("initial values wrong")
	}
	r.SetBandwidth(100)
	r.SetCPUFree(0.1)
	r.SetEnergy(0.5)
	if r.Bandwidth() != 100 || r.CPUFree() != 0.1 || r.Energy() != 0.5 {
		t.Fatal("setters wrong")
	}
}

// rec builds a stable-store record.
func rec(system, ftm string, version uint64) stablestore.ConfigRecord {
	return stablestore.ConfigRecord{System: system, FTM: ftm, Version: version}
}
