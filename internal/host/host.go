// Package host models one computing node of the replicated system: a
// component runtime, a network endpoint, a resource model (the R
// dimension the monitoring engine probes), a crash switch and access to
// stable storage. Hosts crash (endpoint closed, runtime discarded,
// heartbeats silenced) and restart empty, to be re-provisioned by the
// adaptation layer from the configuration committed in stable storage.
package host

import (
	"errors"
	"fmt"
	"sync"

	"resilientft/internal/component"
	"resilientft/internal/faultinject"
	"resilientft/internal/stablestore"
	"resilientft/internal/transport"
)

// ErrCrashed reports an operation on a crashed host.
var ErrCrashed = errors.New("host: crashed")

// Resources is the host's resource availability — the R parameter class.
// The monitoring engine reads it through probes; scenarios change it to
// drive adaptation triggers.
type Resources struct {
	mu sync.Mutex
	// BandwidthKbps is the available network bandwidth.
	bandwidthKbps float64
	// CPUFree is the free CPU fraction (0..1).
	cpuFree float64
	// EnergyBudget is the remaining energy budget fraction (0..1).
	energyBudget float64
}

// NewResources returns a resource model with the given availabilities.
func NewResources(bandwidthKbps, cpuFree, energyBudget float64) *Resources {
	return &Resources{bandwidthKbps: bandwidthKbps, cpuFree: cpuFree, energyBudget: energyBudget}
}

// Bandwidth returns the available bandwidth in kbit/s.
func (r *Resources) Bandwidth() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bandwidthKbps
}

// SetBandwidth updates the available bandwidth.
func (r *Resources) SetBandwidth(kbps float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bandwidthKbps = kbps
}

// CPUFree returns the free CPU fraction.
func (r *Resources) CPUFree() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cpuFree
}

// SetCPUFree updates the free CPU fraction.
func (r *Resources) SetCPUFree(f float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cpuFree = f
}

// Energy returns the remaining energy budget fraction.
func (r *Resources) Energy() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.energyBudget
}

// SetEnergy updates the remaining energy budget fraction.
func (r *Resources) SetEnergy(f float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.energyBudget = f
}

// Host is one computing node.
type Host struct {
	name   string
	net    *transport.MemNetwork
	store  stablestore.Store
	res    *Resources
	health *HealthMonitor

	mu       sync.Mutex
	ep       transport.Endpoint
	rt       *component.Runtime
	registry *component.Registry
	crash    *faultinject.CrashSwitch
	restarts int
}

// Option configures a Host.
type Option func(*Host)

// WithResources sets the host's initial resource model.
func WithResources(r *Resources) Option {
	return func(h *Host) { h.res = r }
}

// WithStore sets the host's stable storage.
func WithStore(s stablestore.Store) Option {
	return func(h *Host) { h.store = s }
}

// New boots a host named name on net, with a component runtime resolving
// types in registry.
func New(name string, net *transport.MemNetwork, registry *component.Registry, opts ...Option) (*Host, error) {
	h := &Host{
		name:     name,
		net:      net,
		registry: registry,
		res:      NewResources(10_000, 0.9, 1.0),
		store:    stablestore.NewMemStore(),
		crash:    &faultinject.CrashSwitch{},
	}
	for _, o := range opts {
		o(h)
	}
	ep, err := net.Endpoint(transport.Address(name))
	if err != nil {
		return nil, fmt.Errorf("host %s: %w", name, err)
	}
	h.ep = ep
	h.rt = component.NewRuntime(registry)
	h.initHealth()
	return h, nil
}

// NewWithEndpoint boots a host over an externally managed endpoint (for
// example a TCP listener). Such hosts cannot Restart themselves — their
// process supervisor owns that — but everything else behaves identically.
func NewWithEndpoint(name string, ep transport.Endpoint, registry *component.Registry, opts ...Option) (*Host, error) {
	if ep == nil {
		return nil, fmt.Errorf("host %s: nil endpoint", name)
	}
	h := &Host{
		name:     name,
		registry: registry,
		res:      NewResources(10_000, 0.9, 1.0),
		store:    stablestore.NewMemStore(),
		crash:    &faultinject.CrashSwitch{},
		ep:       ep,
	}
	for _, o := range opts {
		o(h)
	}
	h.rt = component.NewRuntime(registry)
	h.initHealth()
	return h, nil
}

// initHealth attaches the health monitor with the default resource and
// stable-store collectors. Role-specific dimensions (heartbeat quality)
// are registered by whoever deploys them.
func (h *Host) initHealth() {
	h.health = NewHealthMonitor(h.name)
	for _, c := range defaultCollectors(h) {
		h.health.Register(c)
	}
}

// Name returns the host name (also its network address).
func (h *Host) Name() string { return h.name }

// Addr returns the host's network address.
func (h *Host) Addr() transport.Address { return transport.Address(h.name) }

// Endpoint returns the live network endpoint.
func (h *Host) Endpoint() transport.Endpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ep
}

// Runtime returns the live component runtime.
func (h *Host) Runtime() *component.Runtime {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rt
}

// Resources returns the host resource model.
func (h *Host) Resources() *Resources { return h.res }

// Health returns the host's graded health monitor.
func (h *Host) Health() *HealthMonitor { return h.health }

// Store returns the host's stable storage (which survives crashes).
func (h *Host) Store() stablestore.Store { return h.store }

// CrashSwitch returns the current incarnation's crash switch, for
// entities that must fall silent with the host.
func (h *Host) CrashSwitch() *faultinject.CrashSwitch {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.crash
}

// Crashed reports whether the host is currently down.
func (h *Host) Crashed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.crash.Tripped()
}

// Restarts returns how many times the host restarted.
func (h *Host) Restarts() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.restarts
}

// Crash fails the host: the endpoint closes (crash faults are fail-silent
// — the node just stops answering), the crash switch trips, and the
// component runtime is discarded. Volatile state is lost; the stable
// store survives.
func (h *Host) Crash() {
	h.mu.Lock()
	ep := h.ep
	crash := h.crash
	h.rt = nil
	h.mu.Unlock()
	crash.Trip()
	if ep != nil {
		_ = ep.Close()
	}
}

// Restart brings a crashed host back with a fresh, empty runtime and a
// re-attached endpoint. The adaptation layer re-provisions the FTM from
// stable storage afterwards.
func (h *Host) Restart() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.crash.Tripped() {
		return fmt.Errorf("host %s: restart of a live host", h.name)
	}
	if h.net == nil {
		return fmt.Errorf("host %s: restart is owned by the process supervisor for external endpoints", h.name)
	}
	ep, err := h.net.Endpoint(transport.Address(h.name))
	if err != nil {
		return fmt.Errorf("host %s: restart: %w", h.name, err)
	}
	h.ep = ep
	h.rt = component.NewRuntime(h.registry)
	h.crash = &faultinject.CrashSwitch{}
	h.restarts++
	return nil
}
