package resilientft

import (
	"context"
	"testing"
	"time"

	"resilientft/internal/core"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow
// through the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	ctx := context.Background()
	sys, err := NewSystem(ctx, SystemConfig{
		System:            "calc",
		FTM:               PBR,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()

	client, err := sys.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Invoke(ctx, "add:x", EncodeArg(5))
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeResult(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("add:x = %d", v)
	}

	engine := NewEngine(NewRepository())
	report, err := engine.TransitionSystem(ctx, sys, LFR)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Succeeded() {
		t.Fatalf("transition report: %+v", report)
	}
}

func TestPublicAPISelection(t *testing.T) {
	ft := NewFaultModel(FaultCrash, FaultTransientValue)
	traits := AppTraits{Deterministic: true, StateAccess: true}
	res := ResourceState{BandwidthKbps: 500, CPUFree: 0.9, Energy: 1, Hosts: 2}
	d, err := Select(ft, traits, res, core.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != LFRTR {
		t.Fatalf("Select = %s, want lfr_tr (bandwidth constrained, transient faults)", d.ID)
	}
	if inc := Validate(d, ft, traits, res, core.DefaultThresholds()); len(inc) != 0 {
		t.Fatalf("selected FTM invalid: %v", inc)
	}
	if len(Catalogue()) != 7 {
		t.Fatalf("catalogue size = %d", len(Catalogue()))
	}
}

func TestPublicAPIResilienceLoop(t *testing.T) {
	ctx := context.Background()
	sys, err := NewSystem(ctx, SystemConfig{
		System:            "calc",
		FTM:               PBR,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()

	svc := NewResilience(ResilienceConfig{
		System:     sys,
		FaultModel: NewFaultModel(FaultCrash),
		Traits:     AppTraits{Deterministic: true, StateAccess: true},
		Manager:    AutoApprove{},
	})
	d := svc.HandleTrigger(ctx, core.TrigBandwidthDrop)
	if d.ToFTM != LFR {
		t.Fatalf("decision: %+v", d)
	}
	if sys.Master().FTM() != LFR {
		t.Fatal("transition not applied")
	}
}

func TestManagerFuncAdapter(t *testing.T) {
	asked := 0
	var mgr SystemManager = ManagerFunc(func(edge ScenarioEdge) bool {
		asked++
		return true
	})
	if !mgr.ApprovePossible(ScenarioEdge{}) || asked != 1 {
		t.Fatal("ManagerFunc adapter broken")
	}
	var _ SystemManager = AutoApprove{}
	var _ SystemManager = Conservative{}
}
